// Package hybridslab implements the 'RAM+SSD' hybrid slab manager of
// SSD-assisted Memcached (Ouyang et al. [17]) together with this paper's
// adaptive I/O enhancement (Section V-B2, Figure 5).
//
// Items live in RAM slab chunks until the slab allocator hits its memory
// limit. On an allocation failure, one slab page worth of LRU items from the
// requested class is buffered and synchronously flushed to the SSD, then the
// allocation is retried — exactly the eviction granularity the paper
// describes. The flush I/O scheme is selected by policy:
//
//	PolicyDirect   : direct I/O for every class (H-RDMA-Def behaviour)
//	PolicyAdaptive : mmap-ed slabs for small classes, cached I/O for large
//	                 classes (H-RDMA-Opt behaviour)
//	PolicyCached / PolicyMmap : single-scheme variants for ablations
//
// A RAM-only manager (no SSD attached) evicts LRU items outright, modeling
// default Memcached; subsequent Gets of those keys miss and the client pays
// the backend penalty.
package hybridslab

import (
	"errors"
	"fmt"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/slab"
)

// IOPolicy selects the SSD flush/load scheme per slab class.
type IOPolicy int

const (
	PolicyDirect IOPolicy = iota
	PolicyAdaptive
	PolicyCached
	PolicyMmap
)

func (p IOPolicy) String() string {
	switch p {
	case PolicyDirect:
		return "direct"
	case PolicyAdaptive:
		return "adaptive"
	case PolicyCached:
		return "cached"
	case PolicyMmap:
		return "mmap"
	}
	return fmt.Sprintf("IOPolicy(%d)", int(p))
}

// Host-side copy bandwidth used for chunk buffering (matches the page-cache
// memcpy model).
const memcpyBps = 8_000_000_000

func memcpyTime(size int) sim.Time {
	if size <= 0 {
		return 0
	}
	return sim.Time(float64(size) / float64(memcpyBps) * float64(sim.Second))
}

// Per-operation slab metadata cost (freelist/page bookkeeping).
const slabMetaCost = 200 * sim.Nanosecond

// Item is one key-value pair and its placement.
type Item struct {
	Key       string
	Value     any
	ValueSize int
	Flags     uint32
	CAS       uint64
	ExpireAt  sim.Time // zero = no expiry

	class   int
	onSSD   bool
	dropped bool
	// inTransit marks an item being promoted from SSD to RAM: it is on no
	// recency list while the promoting worker may be suspended in eviction
	// I/O, so concurrent Touch/Release must not relink it.
	inTransit bool
	ssdOff    int64
	ssdPage   *ssdPage
	lru       slab.LRUEntry[*Item]
	// gen is the manager incarnation that owns the item. A cold-restart
	// recovery bumps the manager's generation; items from the previous
	// incarnation (still referenced by workers that were suspended in I/O
	// across the crash) become inert — Touch/Release/Load ignore them.
	gen uint64
}

// ssdPage is one flushed slab page on the SSD arena. Like fatcache, the
// arena is reclaimed at page granularity: when every slot in a page has been
// freed, the whole region returns to the free pool.
type ssdPage struct {
	base int64
	size int64
	live int
	// compacting marks a region being rewritten: freeSSD must not return
	// it to the pool (the compactor retires it exactly once).
	compacting bool
	// quarantined marks a region that served corrupt bits: the allocator
	// must never reuse it until a scrub pass reclaims it (ReclaimQuarantined).
	quarantined bool
}

// Dropped reports whether the value was discarded by eviction; a Get of a
// dropped item is a cache miss.
func (it *Item) Dropped() bool { return it.dropped }

// OnSSD reports whether the item's value currently lives on the SSD.
func (it *Item) OnSSD() bool { return it.onSSD }

// Class returns the item's slab class.
func (it *Item) Class() int { return it.class }

// ErrTooLarge is returned for items exceeding the largest slab chunk.
var ErrTooLarge = errors.New("hybridslab: item exceeds maximum chunk size")

// Config assembles a Manager.
type Config struct {
	Slab slab.Config
	// Policy picks the SSD I/O scheme; ignored for RAM-only managers.
	Policy IOPolicy
	// AdaptiveCutoff is the largest chunk size flushed via mmap under
	// PolicyAdaptive (default 16 KB).
	AdaptiveCutoff int
	// SSDCapacity bounds hybrid-memory overflow (bytes). 0 with a non-nil
	// cache means "device capacity".
	SSDCapacity int64
	// AsyncFlush enables write-behind eviction (the paper's future work,
	// Section VII): the allocating request only buffers the victims into
	// a bounded staging pool and frees their RAM chunks; a background
	// flusher performs the SSD write and placement. Staging is bounded to
	// AsyncFlushDepth in-flight slabs, which is the backpressure under
	// sustained write bursts.
	AsyncFlush bool
	// AsyncFlushDepth bounds in-flight staged flushes (default 4).
	AsyncFlushDepth int
	// NoVerify disables the foreground read-integrity checks (page-header
	// checksum, per-slot key digest, rot detection). The zero value —
	// verification on — is the production configuration; NoVerify exists
	// for the bitrot experiment's nodefense cells, which measure what
	// surfaces when corrupt media is served unchecked.
	NoVerify bool
}

// NotifyEvent classifies an item lifecycle transition driven by the
// eviction machinery (as opposed to store commands, which the store layer
// observes directly). The server-bypass directory subscribes to keep its
// published index coherent with item placement.
type NotifyEvent int

const (
	// EvictStaged: the item left the RAM recency list for an in-flight
	// flush; its RAM copy is about to move.
	EvictStaged NotifyEvent = iota
	// EvictDropped: the value was discarded entirely; the key is dead.
	EvictDropped
	// EvictLanded: the item's authoritative copy now lives on the SSD.
	EvictLanded
	// EvictRestored: a failed flush returned the item to the RAM list.
	EvictRestored
)

// Manager owns one server's item memory.
type Manager struct {
	env    *sim.Env
	cfg    Config
	alloc  *slab.Allocator
	lrus   []slab.LRU[*Item] // one per class, RAM residents only
	ssdLRU slab.LRU[*Item]   // SSD residents, for SSD-full eviction

	notify func(*Item, NotifyEvent)

	file        *pagecache.File // nil for RAM-only
	flushing    int             // evictions in flight (concurrent workers)
	flushEv     *sim.Event      // fired when a flush completes
	flushQ      *sim.Queue[flushJob]
	compactStop *sim.Event
	ssdUsed     int64
	ssdLimit    int64
	ssdNext     int64             // bump pointer for fresh flush pages
	ssdFree     map[int64][]int64 // fully-reclaimed flush regions by size
	windows     map[*sim.Proc]*evictionWindow
	// quarantine holds regions that served corrupt bits, in quarantine
	// order. They are withheld from the free pool until ReclaimQuarantined
	// (the scrub pass) releases the fully-dead ones.
	quarantine []*ssdPage

	// gen counts cold-restart recoveries: workers suspended in I/O across a
	// crash observe a changed generation on resume and abandon their work
	// instead of mutating the rebuilt state.
	gen uint64
	// epoch stamps flushed pages; the commit record must match it. It only
	// grows, surviving recovery (restored to max-seen+1), so a newer copy of
	// a key always carries a higher epoch.
	epoch uint64
	// recovering gates item operations while Recover rebuilds the state.
	recovering bool
	// flushFailStreak counts consecutive failed eviction flushes; past a
	// small budget eviction sheds victims instead of retrying a failing
	// device forever.
	flushFailStreak int

	// Stats
	Sets, Gets, Hits       int64
	FlushPages             int64 // slab pages flushed to SSD
	FlushWrites            int64 // successful eviction data writes
	CommitWrites           int64 // successful commit-record writes
	FlushErrors            int64 // eviction flushes failed by device errors
	FlushedItems           int64
	SSDLoads               int64
	Promotions             int64 // SSD items moved back to RAM on Get
	CorruptLoads           int64 // uncorrectable SSD reads (data loss)
	QuarantinedPages       int64 // regions quarantined after serving corrupt bits
	QuarantineReclaims     int64 // quarantined regions released back by scrub
	QuarantineEvacuated    int64 // live slots re-verified and moved off quarantined regions
	Compactions            int64 // arena regions rewritten densely
	DropEvictions          int64 // items discarded entirely
	AbortedWindows         int64 // eviction windows torn down by Crash
	FlushTime, SSDLoadTime sim.Time
	AsyncFlushTime         sim.Time // background write-behind time
	AllocStalls            int64
}

// New builds a hybrid manager. file may be nil for a RAM-only store; then
// eviction drops items (default Memcached behaviour).
func New(env *sim.Env, cfg Config, file *pagecache.File) *Manager {
	if cfg.AdaptiveCutoff <= 0 {
		cfg.AdaptiveCutoff = 16 * 1024
	}
	m := &Manager{
		env:     env,
		cfg:     cfg,
		alloc:   slab.New(cfg.Slab),
		file:    file,
		flushEv: env.NewEvent(),
		ssdFree: make(map[int64][]int64),
		windows: make(map[*sim.Proc]*evictionWindow),
	}
	m.lrus = make([]slab.LRU[*Item], m.alloc.NumClasses())
	if file != nil {
		m.ssdLimit = cfg.SSDCapacity
		if m.ssdLimit <= 0 {
			m.ssdLimit = file.Size()
		}
		if cfg.AsyncFlush {
			depth := cfg.AsyncFlushDepth
			if depth <= 0 {
				depth = 4
			}
			m.flushQ = sim.NewQueue[flushJob](env, depth)
			env.Spawn("hybridslab-flusher", m.asyncFlusher)
		}
	}
	return m
}

// flushJob is one staged slab eviction awaiting its SSD write. gen pins the
// manager incarnation that staged it: jobs staged before a cold restart are
// abandoned, not placed into the rebuilt arena.
type flushJob struct {
	victims []*Item
	class   int
	chunk   int
	gen     uint64
}

// SetNotify installs the eviction lifecycle observer. One observer; the
// store layer fans out if it ever needs more.
func (m *Manager) SetNotify(fn func(*Item, NotifyEvent)) { m.notify = fn }

// event reports one item transition to the observer, if any.
func (m *Manager) event(it *Item, ev NotifyEvent) {
	if m.notify != nil {
		m.notify(it, ev)
	}
}

// Allocator exposes the underlying slab allocator (read-only use).
func (m *Manager) Allocator() *slab.Allocator { return m.alloc }

// Hybrid reports whether an SSD is attached.
func (m *Manager) Hybrid() bool { return m.file != nil }

// SSDUsed returns bytes of SSD space holding live items.
func (m *Manager) SSDUsed() int64 { return m.ssdUsed }

// flushScheme returns the I/O scheme used to evict chunks of class idx.
func (m *Manager) flushScheme(class int) pagecache.Scheme {
	switch m.cfg.Policy {
	case PolicyDirect:
		return pagecache.Direct
	case PolicyCached:
		return pagecache.Cached
	case PolicyMmap:
		return pagecache.Mmap
	case PolicyAdaptive:
		if m.alloc.ChunkSize(class) <= m.cfg.AdaptiveCutoff {
			return pagecache.Mmap
		}
		return pagecache.Cached
	}
	return pagecache.Direct
}

// loadScheme returns the I/O scheme used to read an evicted item back:
// O_DIRECT chunk reads for the default design, buffered (page-cache) reads
// for the optimized designs — a large share of the 54-83% read-side gain of
// H-RDMA-Opt over H-RDMA-Def (Fig. 8a) is exactly direct-vs-buffered reads.
func (m *Manager) loadScheme(class int) pagecache.Scheme {
	if m.cfg.Policy == PolicyDirect {
		return pagecache.Direct
	}
	return pagecache.Cached
}

// Store inserts or replaces the item for key, charging p the slab
// management and any eviction I/O time. This is the "Slab Allocation"
// stage of a Set.
func (m *Manager) Store(p *sim.Proc, it *Item) error {
	if m.recovering {
		return ErrRecovering
	}
	class, ok := m.alloc.ClassFor(it.ValueSize + len(it.Key) + itemOverhead)
	if !ok {
		return ErrTooLarge
	}
	it.class = class
	it.gen = m.gen
	p.Sleep(slabMetaCost)
	for {
		switch m.alloc.Alloc(class) {
		case slab.AllocOK, slab.AllocNewPage:
			// Copy the value into the chunk.
			p.Sleep(memcpyTime(it.ValueSize))
			m.lrus[class].PushFront(&it.lru)
			it.lru.Value = it
			it.onSSD = false
			m.Sets++
			return nil
		case slab.AllocNeedEvict:
			m.AllocStalls++
			m.evictOnePage(p, class)
		}
	}
}

const itemOverhead = 56 // key pointer, CAS, flags, LRU links

// evictOnePage frees roughly one slab page of RAM by moving LRU items of
// the given class (falling back to the globally fullest class) to the SSD,
// or dropping them when RAM-only.
func (m *Manager) evictOnePage(p *sim.Proc, class int) {
	victimClass := class
	if m.lrus[class].Len() == 0 {
		// The class being allocated has no victims yet (fresh class while
		// memory is full of other classes): steal from the fullest class.
		best, bestBytes := -1, 0
		for i := range m.lrus {
			b := m.lrus[i].Len() * m.alloc.ChunkSize(i)
			if b > bestBytes {
				best, bestBytes = i, b
			}
		}
		if best < 0 {
			// No victims anywhere: either memory is tied up in freed
			// chunks of other classes (reassign an empty page), or every
			// candidate is in another worker's in-flight flush (wait for
			// it and let the caller's allocation loop retry).
			if m.alloc.ReclaimEmptyPage() {
				return
			}
			if w := m.windows[p]; w != nil && len(w.jobs) > 0 {
				// Our own deferred evictions are among the in-flight
				// flushes; waiting on flushEv could be waiting on
				// ourselves. Land them now and let the caller retry.
				jobs := w.jobs
				w.jobs = nil
				m.placeMerged(p, jobs)
				return
			}
			if m.flushing > 0 {
				p.Wait(m.flushEv)
				return
			}
			panic("hybridslab: memory limit too small to hold one page")
		}
		victimClass = best
	}
	chunk := m.alloc.ChunkSize(victimClass)
	pageSize := m.alloc.Config().PageSize
	want := pageSize / chunk
	if want < 1 {
		want = 1
	}
	var victims []*Item
	for len(victims) < want {
		e := m.lrus[victimClass].PopBack()
		if e == nil {
			break
		}
		victims = append(victims, e.Value)
	}
	if len(victims) == 0 {
		panic("hybridslab: no victims in chosen class")
	}
	if m.file == nil {
		// Default Memcached: drop. No suspension points here, so victims
		// cannot be raced.
		for _, v := range victims {
			m.alloc.Free(victimClass)
			v.Value = nil
			v.dropped = true
			m.DropEvictions++
			m.event(v, EvictDropped)
		}
		return
	}
	// Buffer one slab of key-value pairs. The victims are on no recency
	// list while the flush is in flight; mark them in transit so
	// concurrent Touch/Release leave the relinking to us.
	for _, v := range victims {
		v.inTransit = true
		m.event(v, EvictStaged)
	}
	gen0 := m.gen
	m.flushing++
	flushBytes := len(victims) * chunk
	t0 := p.Now()
	p.Sleep(memcpyTime(flushBytes))
	if m.gen != gen0 {
		// Cold restart happened while we were buffering: the allocator and
		// LRU state the victims belonged to is gone. Abandon them.
		m.abandonJob(flushJob{victims: victims, class: victimClass, chunk: chunk, gen: gen0})
		return
	}
	job := flushJob{victims: victims, class: victimClass, chunk: chunk, gen: gen0}
	if m.cfg.AsyncFlush {
		// Write-behind: the staging copy holds the data, so the RAM
		// chunks free immediately; the background flusher performs the
		// SSD write. Put blocks when the staging pool is full — that is
		// the only stall the allocating request can see.
		for range victims {
			m.alloc.Free(victimClass)
		}
		m.flushQ.Put(p, job)
		m.FlushTime += p.Now() - t0
		return
	}
	if w := m.windows[p]; w != nil {
		// Eviction coalescing window (doorbell batching): stage like
		// write-behind — the staging copy holds the data, so the RAM
		// chunks free now — but the deferred SSD write stays with this
		// worker and lands in EndEvictionBatch's merged flush.
		for range victims {
			m.alloc.Free(victimClass)
		}
		w.jobs = append(w.jobs, job)
		m.FlushTime += p.Now() - t0
		return
	}
	m.placeVictims(p, job, true)
	m.FlushTime += p.Now() - t0
}

// asyncFlusher drains staged evictions in the background (write-behind).
func (m *Manager) asyncFlusher(p *sim.Proc) {
	for {
		job, ok := m.flushQ.Get(p)
		if !ok {
			return
		}
		t0 := p.Now()
		m.placeVictims(p, job, false)
		m.AsyncFlushTime += p.Now() - t0
	}
}

// --- Eviction coalescing (doorbell batching) ---

// evictionWindow accumulates evictions staged by one worker process while it
// executes a batch of requests back-to-back.
type evictionWindow struct {
	depth int
	jobs  []flushJob
}

// BeginEvictionBatch opens a coalescing window for the calling process:
// until the matching EndEvictionBatch, synchronous evictions it triggers
// only stage their victims and free the RAM chunks; the SSD writes are
// deferred and merged. Windows nest; other workers' evictions are
// unaffected. A no-op for RAM-only managers (eviction just drops) and under
// AsyncFlush (write-behind already decouples the write).
func (m *Manager) BeginEvictionBatch(p *sim.Proc) {
	if m.file == nil || m.cfg.AsyncFlush {
		return
	}
	w := m.windows[p]
	if w == nil {
		w = &evictionWindow{}
		m.windows[p] = w
	}
	w.depth++
}

// EndEvictionBatch closes the calling process's window and lands its
// deferred evictions: adjacent jobs flushed with the same I/O scheme share
// one contiguously allocated arena region and one larger sequential SSD
// write — the amortization that makes a batch of Sets cost far fewer device
// writes than the same Sets issued one by one.
func (m *Manager) EndEvictionBatch(p *sim.Proc) {
	w := m.windows[p]
	if w == nil {
		return
	}
	if w.depth--; w.depth > 0 {
		return
	}
	delete(m.windows, p)
	if len(w.jobs) == 0 {
		return
	}
	t0 := p.Now()
	m.placeMerged(p, w.jobs)
	m.FlushTime += p.Now() - t0
}

// placeMerged performs a window's deferred SSD writes, coalescing runs of
// same-scheme jobs into single sequential writes. Page-granular reclaim is
// preserved: every job keeps its own ssdPage inside the merged region. Runs
// that cannot get a contiguous region (arena full or fragmented) fall back
// to per-job placement, which reuses freed regions and discards cold SSD
// items.
//
// Atomicity: the run's data write covers every region's header and slots;
// the regions' commit records then land in one further small journal write.
// A crash (or torn write) between the two leaves the whole batch
// uncommitted — recovery discards every one of its pages.
func (m *Manager) placeMerged(p *sim.Proc, jobs []flushJob) {
	for i := 0; i < len(jobs); {
		scheme := m.flushScheme(jobs[i].class)
		j := i
		var total int64
		for j < len(jobs) && m.flushScheme(jobs[j].class) == scheme {
			total += regionSize(len(jobs[j].victims), jobs[j].chunk)
			j++
		}
		run := jobs[i:j]
		i = j
		if run[0].gen != m.gen {
			// Staged before a cold restart: the rebuilt arena must not
			// receive these pages.
			for _, job := range run {
				m.abandonJob(job)
			}
			continue
		}
		if len(run) == 1 {
			m.placeVictims(p, run[0], false)
			continue
		}
		base, ok := m.ssdAllocContig(total)
		if !ok {
			for _, job := range run {
				m.placeVictims(p, job, false)
			}
			continue
		}
		gen0 := m.gen
		epoch := m.nextEpoch()
		var data []pagecache.Extent
		commits := make([]pagecache.Extent, 0, len(run))
		bases := make([]int64, len(run))
		off := base
		for k, job := range run {
			bases[k] = off
			d, c := m.buildRegion(job, off, epoch)
			data = append(data, d...)
			commits = append(commits, c)
			off += regionSize(len(job.victims), job.chunk)
		}
		ok = m.file.WriteExtents(p, base, int(total), data, scheme)
		if m.gen != gen0 {
			for _, job := range run {
				m.abandonJob(job)
			}
			continue
		}
		if ok {
			m.FlushWrites++
			ok = m.file.WriteCommit(p, commits)
			if m.gen != gen0 {
				for _, job := range run {
					m.abandonJob(job)
				}
				continue
			}
		}
		if !ok {
			// Injected device write error on the data or commit write: the
			// batch is not on the SSD. Keep the victims RAM-resident and
			// return the regions to the free pool.
			m.FlushErrors++
			m.flushFailStreak++
			for k, job := range run {
				m.discardRegionExtents(bases[k], job)
				m.ssdFree[regionSize(len(job.victims), job.chunk)] = append(m.ssdFree[regionSize(len(job.victims), job.chunk)], bases[k])
				m.unflush(job, false)
				m.jobDone()
			}
			continue
		}
		m.flushFailStreak = 0
		m.CommitWrites++
		for k, job := range run {
			m.placeAt(job, bases[k], false)
			m.jobDone()
		}
	}
}

// discardRegionExtents drops any logical/durable extents a failed or
// abandoned region write may have placed, so the region is clean for reuse.
func (m *Manager) discardRegionExtents(base int64, job flushJob) {
	size := regionSize(len(job.victims), job.chunk)
	m.file.Discard(base)
	for i := range job.victims {
		m.file.Discard(slotOff(base, i, job.chunk))
	}
	m.file.Discard(commitOff(base, size))
}

// ssdAllocContig bump-allocates one contiguous region for a merged flush.
// Unlike ssdAlloc it does not scavenge on failure — freed regions are
// job-sized, not run-sized — so callers fall back to per-job placement.
func (m *Manager) ssdAllocContig(size int64) (int64, bool) {
	if m.ssdNext+size <= m.ssdLimit {
		off := m.ssdNext
		m.ssdNext += size
		return off, true
	}
	return 0, false
}

// placeVictims performs the SSD write and placement for one evicted slab.
// freeRAM releases the victims' RAM chunks (the synchronous path; the
// async and coalesced paths freed them at buffering time).
//
// The data write (header + slots) and the commit-record write are separate
// device commands; the page becomes durable only when both land intact. On
// an injected device write error the victims stay RAM-resident (unless the
// device keeps failing past a small retry budget, in which case eviction
// sheds them — a cache must make forward progress on a dying drive).
func (m *Manager) placeVictims(p *sim.Proc, job flushJob, freeRAM bool) {
	if job.gen != m.gen {
		m.abandonJob(job)
		return
	}
	defer func(gen0 uint64) {
		if m.gen == gen0 {
			m.jobDone()
		}
	}(m.gen)
	size := regionSize(len(job.victims), job.chunk)
	base, ok := m.ssdAlloc(size)
	if !ok {
		// SSD full: drop the victims entirely (LRU overflow discard).
		m.dropJob(job, freeRAM)
		return
	}
	gen0 := m.gen
	data, commit := m.buildRegion(job, base, m.nextEpoch())
	ok = m.file.WriteExtents(p, base, int(size)-PageCommitSize, data, m.flushScheme(job.class))
	if m.gen != gen0 {
		m.abandonJob(job)
		return
	}
	if ok {
		m.FlushWrites++
		ok = m.file.WriteCommit(p, []pagecache.Extent{commit})
		if m.gen != gen0 {
			m.abandonJob(job)
			return
		}
	}
	if !ok {
		m.FlushErrors++
		m.flushFailStreak++
		m.discardRegionExtents(base, job)
		m.ssdFree[size] = append(m.ssdFree[size], base)
		if m.flushFailStreak > flushFailBudget {
			m.dropJob(job, freeRAM)
			return
		}
		m.unflush(job, freeRAM)
		return
	}
	m.flushFailStreak = 0
	m.CommitWrites++
	m.placeAt(job, base, freeRAM)
}

// flushFailBudget is how many consecutive eviction flushes may fail on
// device write errors before eviction falls back to dropping victims
// outright instead of keeping them RAM-resident (which would otherwise
// livelock allocation against a persistently failing drive).
const flushFailBudget = 3

// unflush undoes a failed flush: the victims return to the RAM recency
// list instead of being half-placed on the SSD. When their chunks were
// already freed at staging time (freeRAM=false), they are re-allocated
// without recursive eviction — victims that no longer fit are shed.
func (m *Manager) unflush(job flushJob, freeRAM bool) {
	for _, v := range job.victims {
		v.inTransit = false
		if v.dropped {
			if freeRAM {
				m.alloc.Free(job.class)
			}
			continue
		}
		if !freeRAM {
			switch m.alloc.Alloc(job.class) {
			case slab.AllocOK, slab.AllocNewPage:
			default:
				// No RAM left and we must not evict from a failure path:
				// shed the victim.
				v.Value = nil
				v.dropped = true
				m.DropEvictions++
				m.event(v, EvictDropped)
				continue
			}
		}
		v.onSSD = false
		m.lrus[job.class].PushFront(&v.lru)
		m.event(v, EvictRestored)
	}
}

// abandonJob discards a job staged by a previous manager incarnation (cold
// restart while its worker was suspended): the items are unreachable from
// the rebuilt index, and none of the rebuilt state may be touched.
func (m *Manager) abandonJob(job flushJob) {
	for _, v := range job.victims {
		v.inTransit = false
		v.Value = nil
		v.dropped = true
		m.event(v, EvictDropped)
	}
}

// jobDone retires one in-flight eviction and wakes allocation waiters.
func (m *Manager) jobDone() {
	m.flushing--
	ev := m.flushEv
	m.flushEv = m.env.NewEvent()
	ev.Fire()
}

// nextEpoch returns a fresh commit epoch.
func (m *Manager) nextEpoch() uint64 {
	m.epoch++
	return m.epoch
}

// dropJob discards a staged job's victims entirely (SSD full).
func (m *Manager) dropJob(job flushJob, freeRAM bool) {
	for _, v := range job.victims {
		if freeRAM {
			m.alloc.Free(job.class)
		}
		v.inTransit = false
		if !v.dropped {
			v.Value = nil
			v.dropped = true
			m.DropEvictions++
			m.event(v, EvictDropped)
		}
	}
}

// placeAt links one staged job's victims to their SSD slots at base; the
// region write (header + slots) and its commit record have already landed.
// Each job keeps its own ssdPage so arena reclaim stays page-granular even
// when several jobs share one merged write.
func (m *Manager) placeAt(job flushJob, base int64, freeRAM bool) {
	victims, victimClass, chunk := job.victims, job.class, job.chunk
	size := regionSize(len(victims), chunk)
	pg := &ssdPage{base: base, size: size}
	for i, v := range victims {
		if freeRAM {
			m.alloc.Free(victimClass)
		}
		v.inTransit = false
		off := slotOff(base, i, chunk)
		if v.dropped {
			// Deleted or replaced while the flush was in flight: invalidate
			// the slot the region write just placed so recovery cannot
			// resurrect the dead copy.
			m.file.Discard(off)
			continue
		}
		v.onSSD = true
		v.ssdOff = off
		v.ssdPage = pg
		m.ssdLRU.PushFront(&v.lru)
		pg.live++
		m.FlushedItems++
		m.event(v, EvictLanded)
	}
	if pg.live == 0 {
		// Every victim died mid-flush; recycle the region immediately.
		m.file.Discard(base)
		m.file.Discard(commitOff(base, size))
		m.ssdFree[pg.size] = append(m.ssdFree[pg.size], pg.base)
	} else {
		m.ssdUsed += size
	}
	m.FlushPages++
}

// ssdAlloc finds space for a flush page, reusing freed regions of the same
// size, evicting cold SSD items if the arena is full.
func (m *Manager) ssdAlloc(size int64) (int64, bool) {
	if free := m.ssdFree[size]; len(free) > 0 {
		off := free[len(free)-1]
		m.ssdFree[size] = free[:len(free)-1]
		return off, true
	}
	if m.ssdNext+size <= m.ssdLimit {
		off := m.ssdNext
		m.ssdNext += size
		return off, true
	}
	// Reclaim: drop LRU SSD items until a same-size free region appears.
	for m.ssdLRU.Len() > 0 {
		e := m.ssdLRU.PopBack()
		v := e.Value
		m.freeSSD(v)
		v.Value = nil
		v.dropped = true
		m.DropEvictions++
		m.event(v, EvictDropped)
		if free := m.ssdFree[size]; len(free) > 0 {
			off := free[len(free)-1]
			m.ssdFree[size] = free[:len(free)-1]
			return off, true
		}
	}
	return 0, false
}

// freeSSD releases an item's SSD slot; the flush region returns to the free
// pool once its last slot is freed. The caller owns LRU bookkeeping.
func (m *Manager) freeSSD(it *Item) {
	m.file.Discard(it.ssdOff)
	pg := it.ssdPage
	pg.live--
	if pg.live == 0 && !pg.compacting && !pg.quarantined {
		// The region is dead: drop its header and commit record too, so a
		// later recovery scan doesn't wade through an all-freed page.
		// Quarantined regions are deliberately NOT pooled here — they sit
		// out until the scrub pass reclaims them (ReclaimQuarantined), so
		// the allocator can never place fresh data on suspect media
		// before scrub has looked at it.
		m.file.Discard(pg.base)
		m.file.Discard(commitOff(pg.base, pg.size))
		m.ssdFree[pg.size] = append(m.ssdFree[pg.size], pg.base)
		m.ssdUsed -= pg.size
	}
	it.onSSD = false
	it.ssdPage = nil
}

// Load fetches the item's value for a Get, charging p the chunk copy and,
// for SSD residents, the direct chunk read. This is the "Cache Check and
// Load" stage.
//
// SSD-resident items are served in place and stay on the SSD (fatcache
// semantics: minimal disk reads on hits, no write-amplifying promotion
// churn); recency is tracked in the SSD-side list so overflow eviction
// still discards the coldest items first.
func (m *Manager) Load(p *sim.Proc, it *Item) (any, error) {
	if m.recovering {
		return nil, ErrRecovering
	}
	m.Gets++
	if it.gen != m.gen {
		// An item reference that crossed a cold restart: its storage
		// belongs to the torn-down incarnation.
		return nil, ErrDropped
	}
	if it.dropped {
		return nil, ErrDropped
	}
	if !it.onSSD {
		p.Sleep(memcpyTime(it.ValueSize))
		m.Hits++
		return it.Value, nil
	}
	t0 := p.Now()
	chunk := m.alloc.ChunkSize(it.class)
	v, ok := m.file.Read(p, it.ssdOff, chunk, m.loadScheme(it.class))
	m.SSDLoads++
	if it.gen != m.gen {
		return nil, ErrDropped
	}
	if it.dropped {
		return nil, ErrDropped
	}
	if rot, isRot := v.(blockdev.Rotted); ok && isRot {
		// The media cells rotted under this slot since it was flushed.
		// With verification on this is exactly what the page-header
		// checksum / key-digest re-check catches: quarantine the region
		// and fail typed, never surfacing the bits. The check itself
		// charges no extra time — it rides the chunk read already paid
		// for — so defense and nodefense cells stay time-comparable.
		if !m.cfg.NoVerify {
			return nil, m.quarantineCorrupt(it)
		}
		// Verification disabled: serve the rotted bits as a garbled
		// value, the silent-corruption failure mode the nodefense cells
		// of the bitrot experiment measure.
		if rec, isRec := rot.Payload.(*itemRecord); isRec {
			v = protocol.Garbled{Inner: rec.Value}
		} else {
			v = protocol.Garbled{Inner: rot.Payload}
		}
	} else if rec, isRec := v.(*itemRecord); ok && isRec {
		// Slots store the full item record (key + metadata ride along for
		// recovery); the value is what the caller wants.
		if !m.cfg.NoVerify && !m.verifySlot(it, rec) {
			return nil, m.quarantineCorrupt(it)
		}
		v = rec.Value
	}
	if !ok {
		if it.onSSD {
			// The extent is gone while the item still claims it: an
			// uncorrectable device read (or injected corruption). A cache
			// may lose data; retire the item so the key reads as a miss
			// and the client re-populates from the backend.
			m.ssdLRU.Remove(&it.lru)
			m.freeSSD(it)
			it.Value = nil
			it.dropped = true
			m.CorruptLoads++
			m.event(it, EvictDropped)
			return nil, ErrDropped
		}
		// Raced with a replace that moved the value while the device read
		// was in flight: the item's live value is current.
		v = it.Value
	}
	p.Sleep(memcpyTime(it.ValueSize))
	m.SSDLoadTime += p.Now() - t0
	m.Hits++
	return v, nil
}

// ErrDropped marks an item whose value was discarded by eviction.
var ErrDropped = errors.New("hybridslab: item evicted")

// ErrRecovering is returned while a cold-restart recovery scan is rebuilding
// the store: callers fail fast instead of racing the rebuild.
var ErrRecovering = errors.New("hybridslab: recovery in progress")

// Touch promotes the item in its recency list (the "Cache Update" stage).
func (m *Manager) Touch(it *Item) {
	if it.dropped || it.inTransit || it.gen != m.gen {
		return
	}
	if it.onSSD {
		m.ssdLRU.Touch(&it.lru)
	} else {
		m.lrus[it.class].Touch(&it.lru)
	}
}

// Release frees the item's storage (delete or replace).
func (m *Manager) Release(it *Item) {
	if it.dropped {
		return
	}
	if it.gen != m.gen {
		// Stale reference across a cold restart: its storage is gone.
		it.Value = nil
		it.dropped = true
		return
	}
	if it.inTransit {
		// The promoting worker owns the chunk; it will free it when it
		// observes the drop.
		it.Value = nil
		it.dropped = true
		return
	}
	if it.onSSD {
		m.ssdLRU.Remove(&it.lru)
		m.freeSSD(it)
	} else {
		m.lrus[it.class].Remove(&it.lru)
		m.alloc.Free(it.class)
	}
	it.Value = nil
	it.dropped = true
}

// VisitLRU calls fn for up to limit items per recency list (each RAM class
// tail-first, then the SSD list). fn must not mutate the lists; collect and
// act afterwards. Iteration order is deterministic.
func (m *Manager) VisitLRU(limit int, fn func(*Item) bool) {
	for i := range m.lrus {
		n := 0
		for e := m.lrus[i].Back(); e != nil && n < limit; n++ {
			if !fn(e.Value) {
				return
			}
			e = e.Prev()
		}
	}
	n := 0
	for e := m.ssdLRU.Back(); e != nil && n < limit; n++ {
		if !fn(e.Value) {
			return
		}
		e = e.Prev()
	}
}

// FragReport describes SSD arena utilization: pages still holding live
// items versus reclaimed regions, and the dead-slot share inside live pages
// (fatcache-style page-granular reclaim leaves holes until a whole region
// frees).
type FragReport struct {
	// ArenaBytes is the total bump-allocated arena extent.
	ArenaBytes int64
	// LiveBytes is the space holding live items.
	LiveBytes int64
	// DeadBytes is the space of freed slots inside still-live pages.
	DeadBytes int64
	// FreeRegions is the count of fully-reclaimed regions awaiting reuse.
	FreeRegions int
}

// Fragmentation returns the dead-space share of the allocated arena
// (0 when empty).
func (fr FragReport) Fragmentation() float64 {
	if fr.ArenaBytes == 0 {
		return 0
	}
	return float64(fr.DeadBytes) / float64(fr.ArenaBytes)
}

// FragStats scans the SSD recency list and free pools to build a
// fragmentation report.
func (m *Manager) FragStats() FragReport {
	var fr FragReport
	if m.file == nil {
		return fr
	}
	fr.ArenaBytes = m.ssdNext
	for e := m.ssdLRU.Back(); e != nil; e = e.Prev() {
		fr.LiveBytes += int64(m.alloc.ChunkSize(e.Value.class))
	}
	// Dead space inside live pages = used regions minus live bytes.
	var freeBytes int64
	for size, offs := range m.ssdFree {
		freeBytes += size * int64(len(offs))
		fr.FreeRegions += len(offs)
	}
	fr.DeadBytes = fr.ArenaBytes - freeBytes - fr.LiveBytes
	if fr.DeadBytes < 0 {
		fr.DeadBytes = 0
	}
	return fr
}

// RAMItems returns the number of RAM-resident items.
func (m *Manager) RAMItems() int {
	n := 0
	for i := range m.lrus {
		n += m.lrus[i].Len()
	}
	return n
}

// SSDItems returns the number of SSD-resident items.
func (m *Manager) SSDItems() int { return m.ssdLRU.Len() }
