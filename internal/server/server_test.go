package server

import (
	"fmt"
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
	"hybridkv/internal/slab"
	"hybridkv/internal/store"
	"hybridkv/internal/verbs"
)

// rig wires a raw verbs client directly to a server (no client runtime),
// so the tests observe the server's wire behaviour precisely.
type rig struct {
	env    *sim.Env
	srv    *Server
	qp     *verbs.QP // client side
	sendCQ *verbs.CQ
	recvCQ *verbs.CQ
	respMR *verbs.MR
}

func newRig(t *testing.T, cfg Config, memLimit int64, hybrid bool) *rig {
	t.Helper()
	env := sim.NewEnv()
	fab := simnet.New(env, simnet.FDRInfiniBand())
	snode := fab.AddNode("server")
	cnode := fab.AddNode("client")

	var file *pagecache.File
	if hybrid {
		dev := blockdev.New(env, blockdev.SATA(), 8<<30)
		file = pagecache.New(env, dev, pagecache.DefaultParams()).OpenFile(0, 4<<30)
	}
	mgr := hybridslab.New(env, hybridslab.Config{
		Slab:   slab.Config{MemLimit: memLimit},
		Policy: hybridslab.PolicyAdaptive,
	}, file)
	st := store.New(env, mgr)
	srv := NewRDMA(env, snode, st, cfg)
	srv.Start()

	cdev := verbs.OpenDevice(cnode)
	pd := cdev.AllocPD()
	sendCQ, recvCQ := cdev.CreateCQ(0), cdev.CreateCQ(0)
	qp := cdev.CreateQP(sendCQ, recvCQ)
	srv.AcceptQP(qp)
	for i := 0; i < 4*srv.RecvDepth(); i++ {
		qp.PostRecv(verbs.RecvWR{})
	}
	return &rig{
		env: env, srv: srv, qp: qp,
		sendCQ: sendCQ, recvCQ: recvCQ,
		respMR: pd.RegisterMRSetup(2 << 20),
	}
}

// sendReq posts one request over the raw QP.
func (r *rig) sendReq(p *sim.Proc, req *protocol.Request) {
	req.RespMR = r.respMR.LKey()
	r.qp.PostSend(p, verbs.SendWR{
		Op: verbs.OpSend, Size: req.WireSize(), Payload: req,
	})
}

// awaitResp blocks until the next server message arrives.
func (r *rig) awaitResp(p *sim.Proc) *protocol.Response {
	c := r.recvCQ.WaitPoll(p)
	return c.Payload.(*protocol.Response)
}

func TestSyncServerRoundTrip(t *testing.T) {
	r := newRig(t, Config{Pipeline: Sync}, 64<<20, false)
	var setResp, getResp *protocol.Response
	r.env.Spawn("client", func(p *sim.Proc) {
		r.sendReq(p, &protocol.Request{Op: protocol.OpSet, ReqID: 1, Key: "k", ValueSize: 1024, Value: "v"})
		setResp = r.awaitResp(p)
		r.sendReq(p, &protocol.Request{Op: protocol.OpGet, ReqID: 2, Key: "k"})
		getResp = r.awaitResp(p)
	})
	r.env.Run()
	if setResp.Status != protocol.StatusStored || setResp.ReqID != 1 {
		t.Errorf("set response %+v", setResp)
	}
	if getResp.Status != protocol.StatusOK || getResp.Value != "v" || getResp.ValueSize != 1024 {
		t.Errorf("get response %+v", getResp)
	}
	if r.srv.Requests != 2 {
		t.Errorf("server handled %d requests", r.srv.Requests)
	}
	// Sync servers never ack.
	if r.srv.Acks != 0 {
		t.Errorf("sync server sent %d acks", r.srv.Acks)
	}
}

func TestSyncServerIgnoresAckWanted(t *testing.T) {
	r := newRig(t, Config{Pipeline: Sync}, 64<<20, false)
	var first *protocol.Response
	r.env.Spawn("client", func(p *sim.Proc) {
		r.sendReq(p, &protocol.Request{Op: protocol.OpSet, ReqID: 1, Key: "k", ValueSize: 64, Value: "v", AckWanted: true})
		first = r.awaitResp(p)
	})
	r.env.Run()
	if first.Op != protocol.OpResponse {
		t.Errorf("sync server sent %v before the response", first.Op)
	}
}

func TestAsyncServerAcksBeforeResponse(t *testing.T) {
	r := newRig(t, Config{Pipeline: Async}, 64<<20, false)
	var msgs []*protocol.Response
	var ackAt, respAt sim.Time
	r.env.Spawn("client", func(p *sim.Proc) {
		r.sendReq(p, &protocol.Request{Op: protocol.OpSet, ReqID: 7, Key: "k", ValueSize: 32 * 1024, Value: "v", AckWanted: true})
		m1 := r.awaitResp(p)
		ackAt = p.Now()
		m2 := r.awaitResp(p)
		respAt = p.Now()
		msgs = append(msgs, m1, m2)
	})
	r.env.Run()
	if msgs[0].Op != protocol.OpBufferAck || msgs[0].ReqID != 7 {
		t.Fatalf("first message %+v, want BufferAck", msgs[0])
	}
	if msgs[1].Op != protocol.OpResponse || msgs[1].Status != protocol.StatusStored {
		t.Fatalf("second message %+v, want stored response", msgs[1])
	}
	if ackAt >= respAt {
		t.Errorf("ack at %v not before response at %v", ackAt, respAt)
	}
	if r.srv.Acks != 1 {
		t.Errorf("acks=%d", r.srv.Acks)
	}
}

func TestAsyncPipelinesStorage(t *testing.T) {
	// With W storage workers, N requests with storage time T complete in
	// ≈ N·T/W rather than N·T. Use hybrid sets that trigger eviction I/O.
	run := func(pipeline Pipeline) sim.Time {
		r := newRig(t, Config{Pipeline: pipeline, StorageWorkers: 4}, 2<<20, true)
		const n = 100
		r.env.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				r.sendReq(p, &protocol.Request{
					Op: protocol.OpSet, ReqID: uint64(i + 1),
					Key: fmt.Sprintf("k%03d", i), ValueSize: 32 * 1024, Value: i,
				})
			}
			for i := 0; i < n; i++ {
				r.awaitResp(p)
			}
		})
		return r.env.Run()
	}
	sync, async := run(Sync), run(Async)
	if float64(sync)/float64(async) < 1.5 {
		t.Errorf("async (%v) not ≥1.5x faster than sync (%v) on eviction-heavy sets", async, sync)
	}
}

func TestAsyncBufferBytesBackpressure(t *testing.T) {
	// A tiny buffer admits only one 32KB set at a time: the dispatcher
	// must stall and stop re-posting receives until storage drains.
	r := newRig(t, Config{Pipeline: Async, BufferBytes: 40 << 10, StorageWorkers: 1}, 2<<20, true)
	const n = 12
	done := 0
	r.env.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.sendReq(p, &protocol.Request{
				Op: protocol.OpSet, ReqID: uint64(i + 1),
				Key: fmt.Sprintf("k%03d", i), ValueSize: 32 * 1024, Value: i,
			})
		}
		for i := 0; i < n; i++ {
			r.awaitResp(p)
			done++
		}
	})
	r.env.Run()
	if done != n {
		t.Fatalf("only %d of %d responses under backpressure (deadlock?)", done, n)
	}
}

func TestDeleteAndMiss(t *testing.T) {
	r := newRig(t, Config{Pipeline: Async}, 64<<20, false)
	var del, miss *protocol.Response
	r.env.Spawn("client", func(p *sim.Proc) {
		r.sendReq(p, &protocol.Request{Op: protocol.OpSet, ReqID: 1, Key: "k", ValueSize: 64, Value: "v"})
		r.awaitResp(p)
		r.sendReq(p, &protocol.Request{Op: protocol.OpDelete, ReqID: 2, Key: "k"})
		del = r.awaitResp(p)
		r.sendReq(p, &protocol.Request{Op: protocol.OpGet, ReqID: 3, Key: "k"})
		miss = r.awaitResp(p)
	})
	r.env.Run()
	if del.Status != protocol.StatusDeleted {
		t.Errorf("delete status %v", del.Status)
	}
	if miss.Status != protocol.StatusNotFound {
		t.Errorf("get-after-delete status %v", miss.Status)
	}
}

func TestIPoIBServerRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	fab := simnet.New(env, simnet.IPoIB())
	snode := fab.AddNode("server")
	cnode := fab.AddNode("client")
	mgr := hybridslab.New(env, hybridslab.Config{Slab: slab.Config{MemLimit: 64 << 20}}, nil)
	srv := NewIPoIB(env, snode, store.New(env, mgr), Config{})
	srv.Start()
	host := verbs.NewHost(cnode)
	var resp *protocol.Response
	env.Spawn("client", func(p *sim.Proc) {
		stream := host.Dial(srv.Host())
		req := &protocol.Request{Op: protocol.OpSet, ReqID: 1, Key: "k", ValueSize: 128, Value: "v"}
		stream.Send(p, req.WireSize(), req)
		msg, _ := stream.Recv(p)
		resp = msg.Payload.(*protocol.Response)
	})
	env.Run()
	if resp.Status != protocol.StatusStored {
		t.Errorf("IPoIB set response %+v", resp)
	}
	if srv.Requests != 1 {
		t.Errorf("requests=%d", srv.Requests)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.fill()
	if c.StorageWorkers != 4 || c.BufferBytes != 2<<20 || c.RecvDepth != 16384 {
		t.Errorf("defaults %+v", c)
	}
	if Sync.String() != "sync" || Async.String() != "async" {
		t.Errorf("pipeline strings")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	r := newRig(t, Config{}, 64<<20, false)
	defer func() {
		if recover() == nil {
			t.Errorf("double Start did not panic")
		}
	}()
	r.srv.Start()
}
