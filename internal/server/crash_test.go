package server

import (
	"fmt"
	"testing"

	"hybridkv/internal/blockdev"
	"hybridkv/internal/hybridslab"
	"hybridkv/internal/pagecache"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
	"hybridkv/internal/slab"
	"hybridkv/internal/store"
	"hybridkv/internal/verbs"
)

// TestCrashDiscardsAndWarmRestartServes drives both pipelines through a
// crash/restart cycle: requests during the outage vanish without a
// response, and the store survives the warm restart.
func TestCrashDiscardsAndWarmRestartServes(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"sync", Config{Pipeline: Sync}},
		{"async", Config{Pipeline: Async}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newRig(t, tc.cfg, 64<<20, false)
			var resp *protocol.Response
			r.env.Spawn("client", func(p *sim.Proc) {
				r.sendReq(p, &protocol.Request{Op: protocol.OpSet, ReqID: 1, Key: "k", ValueSize: 1024, Value: "v"})
				if got := r.awaitResp(p); got.Status != protocol.StatusStored {
					t.Errorf("pre-crash set status %v", got.Status)
				}
				r.srv.Crash()
				if !r.srv.Down() {
					t.Error("Down() = false after Crash")
				}
				r.sendReq(p, &protocol.Request{Op: protocol.OpGet, ReqID: 2, Key: "k"})
				p.Sleep(500 * sim.Microsecond)
				r.srv.Restart()
				if r.srv.Down() {
					t.Error("Down() = true after Restart")
				}
				r.sendReq(p, &protocol.Request{Op: protocol.OpGet, ReqID: 3, Key: "k"})
				resp = r.awaitResp(p)
			})
			r.env.Run()
			if resp == nil {
				t.Fatal("no response after restart")
			}
			// The first response after the outage must answer the
			// post-restart request — the down-window get got nothing.
			if resp.ReqID != 3 {
				t.Fatalf("post-restart response answers ReqID %d, want 3", resp.ReqID)
			}
			if resp.Status != protocol.StatusOK || resp.Value != "v" {
				t.Errorf("store did not survive warm restart: %+v", resp)
			}
			if r.srv.Discarded != 1 {
				t.Errorf("Discarded = %d, want 1", r.srv.Discarded)
			}
		})
	}
}

func TestScheduleCrashWindow(t *testing.T) {
	r := newRig(t, Config{Pipeline: Sync}, 64<<20, false)
	const from, to = 100 * sim.Microsecond, 300 * sim.Microsecond
	r.srv.ScheduleCrash(from, to)
	var resp *protocol.Response
	r.env.Spawn("client", func(p *sim.Proc) {
		r.sendReq(p, &protocol.Request{Op: protocol.OpSet, ReqID: 1, Key: "k", ValueSize: 512, Value: "v"})
		if got := r.awaitResp(p); got.Status != protocol.StatusStored {
			t.Errorf("pre-window set status %v", got.Status)
		}
		p.Sleep(200*sim.Microsecond - p.Now())
		if !r.srv.Down() {
			t.Error("server not down inside the scheduled window")
		}
		r.sendReq(p, &protocol.Request{Op: protocol.OpGet, ReqID: 2, Key: "k"})
		p.Sleep(400*sim.Microsecond - p.Now())
		if r.srv.Down() {
			t.Error("server still down after the scheduled restart")
		}
		r.sendReq(p, &protocol.Request{Op: protocol.OpGet, ReqID: 3, Key: "k"})
		resp = r.awaitResp(p)
	})
	r.env.Run()
	if resp == nil || resp.ReqID != 3 || resp.Status != protocol.StatusOK {
		t.Fatalf("post-window response %+v, want ReqID 3 OK", resp)
	}
	if r.srv.Discarded != 1 {
		t.Errorf("Discarded = %d, want 1", r.srv.Discarded)
	}
}

func TestScheduleCrashRejectsEmptyWindow(t *testing.T) {
	r := newRig(t, Config{Pipeline: Sync}, 64<<20, false)
	defer func() {
		if recover() == nil {
			t.Error("ScheduleCrash(to <= from) did not panic")
		}
	}()
	r.srv.ScheduleCrash(50, 50)
}

// newDirectRig is newRig with a direct-I/O hybrid store (H-RDMA-Def
// geometry), whose synchronous evictions hold the dispatcher for hundreds
// of microseconds — the window the mid-eviction crash test needs.
func newDirectRig(t *testing.T, memLimit int64) *rig {
	t.Helper()
	env := sim.NewEnv()
	fab := simnet.New(env, simnet.FDRInfiniBand())
	snode := fab.AddNode("server")
	cnode := fab.AddNode("client")
	dev := blockdev.New(env, blockdev.SATA(), 8<<30)
	file := pagecache.New(env, dev, pagecache.DefaultParams()).OpenFile(0, 4<<30)
	mgr := hybridslab.New(env, hybridslab.Config{
		Slab:   slab.Config{MemLimit: memLimit},
		Policy: hybridslab.PolicyDirect,
	}, file)
	srv := NewRDMA(env, snode, store.New(env, mgr), Config{Pipeline: Sync})
	srv.Start()
	cdev := verbs.OpenDevice(cnode)
	pd := cdev.AllocPD()
	sendCQ, recvCQ := cdev.CreateCQ(0), cdev.CreateCQ(0)
	qp := cdev.CreateQP(sendCQ, recvCQ)
	srv.AcceptQP(qp)
	for i := 0; i < 4*srv.RecvDepth(); i++ {
		qp.PostRecv(verbs.RecvWR{})
	}
	return &rig{env: env, srv: srv, qp: qp, sendCQ: sendCQ, recvCQ: recvCQ,
		respMR: pd.RegisterMRSetup(2 << 20)}
}

// A sync server crashing in the middle of an eviction's storage phase must
// discard the finished work and keep going — the client sees a lost
// response (an error via its deadline), never a wedged server.
func TestSyncCrashMidEvictionErrorsNotHangs(t *testing.T) {
	r := newDirectRig(t, 1<<20) // 1 MB of slab: 32 KB sets evict almost at once
	const fill = 40
	var after *protocol.Response
	r.env.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < fill; i++ {
			r.sendReq(p, &protocol.Request{
				Op: protocol.OpSet, ReqID: uint64(i + 1),
				Key: fmt.Sprintf("k%02d", i), ValueSize: 32 << 10, Value: i,
			})
			if got := r.awaitResp(p); got.Status != protocol.StatusStored {
				t.Errorf("fill set %d status %v", i, got.Status)
			}
		}
		r.sendReq(p, &protocol.Request{
			Op: protocol.OpSet, ReqID: 100,
			Key: "victim", ValueSize: 32 << 10, Value: "v",
		})
		p.Sleep(50 * sim.Millisecond) // outlives the victim's storage phase
		r.srv.Restart()
		r.sendReq(p, &protocol.Request{Op: protocol.OpGet, ReqID: 101, Key: "k39"})
		after = r.awaitResp(p)
	})
	// Crash the instant the dispatcher starts the victim's storage phase.
	r.env.Spawn("saboteur", func(p *sim.Proc) {
		for r.srv.Requests < fill+1 {
			p.Sleep(sim.Microsecond)
		}
		r.srv.Crash()
	})
	r.env.Run() // a wedged dispatcher would leave the post-restart get unanswered
	if after == nil {
		t.Fatal("server never answered after the mid-eviction crash")
	}
	if after.ReqID != 101 {
		t.Fatalf("first post-restart response answers ReqID %d, want 101 "+
			"(the victim's response must be lost with the crash)", after.ReqID)
	}
	if after.Status != protocol.StatusOK {
		t.Errorf("post-restart get status %v", after.Status)
	}
	if r.srv.Discarded != 1 {
		t.Errorf("Discarded = %d, want 1 (the mid-eviction victim)", r.srv.Discarded)
	}
}
