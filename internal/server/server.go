// Package server implements the Memcached server engine in the two pipeline
// designs the paper contrasts (Section V-B1, Figure 3):
//
//	Sync  — the request dispatcher executes the storage phase (slab
//	        allocation / SSD eviction / cache load) inline, then responds.
//	        While a hybrid eviction runs, no other request makes progress
//	        and no receive buffer is re-posted: this is the H-RDMA-Def /
//	        H-RDMA-Opt-Block behaviour whose client-side symptom is the
//	        long "client wait" stage.
//
//	Async — the dispatcher runs only the communication phase: it moves the
//	        request into a bounded buffer, re-posts the receive (returning a
//	        flow-control credit to the client) and sends an early BufferAck
//	        when the client asked for one. A pool of storage workers drains
//	        the buffer, executes the storage phase, and responds. Expensive
//	        hybrid-memory eviction thus happens asynchronously while the
//	        client proceeds — the enhancement behind H-RDMA-Opt-NonB-b/i.
//
// The RDMA path speaks verbs (two-sided SEND for requests, one-sided RDMA
// WRITE-with-immediate into the client's registered response region for
// responses); the IPoIB path speaks stream sockets.
package server

import (
	"fmt"

	"hybridkv/internal/hybridslab"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/replication"
	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
	"hybridkv/internal/store"
	"hybridkv/internal/verbs"
)

// Pipeline selects the request-handling design.
type Pipeline int

const (
	Sync Pipeline = iota
	Async
)

func (pl Pipeline) String() string {
	if pl == Async {
		return "async"
	}
	return "sync"
}

// Config tunes one server.
type Config struct {
	// Name identifies the server in logs and process names.
	Name string
	// Pipeline selects the sync or async design.
	Pipeline Pipeline
	// StorageWorkers is the async storage pool size (default 4).
	StorageWorkers int
	// BufferBytes bounds the async request buffer by memory, not request
	// count (default 2 MB). Buffered GET requests are header-sized, so
	// thousands fit and BufferAcks flow freely; buffered SET requests
	// carry their values, so when the storage pool falls behind writes,
	// the dispatcher stalls here, receives stop being re-posted, and
	// clients run out of credits — the backpressure that throttles bset
	// under write-heavy load (Figure 7(a)).
	BufferBytes int
	// RecvDepth is the number of receives pre-posted per client QP, which
	// equals the flow-control credits each client connection gets. The
	// default (16384) is deliberately deep: like the reference system,
	// request admission is governed by the buffer-memory bound
	// (BufferBytes), not by receive credits, so small requests are never
	// throttled behind bulk responses.
	RecvDepth int
	// ParseCost is the per-request header parse/dispatch cost
	// (default 400 ns).
	ParseCost sim.Time
	// BatchOpCost is the incremental parse cost per additional header in a
	// coalesced BatchFrame (default 100 ns): unpacking N ops from one frame
	// costs ParseCost + (N-1)·BatchOpCost, far below N·ParseCost.
	BatchOpCost sim.Time
	// Overload configures bounded admission with load shedding on the
	// async pipeline. The zero value disables it: the dispatcher blocks
	// on the buffer reservation exactly as before.
	Overload OverloadConfig
}

// OverloadConfig bounds admission on the async pipeline. When Enabled, the
// dispatcher never blocks on the buffer reservation: a request whose op
// class is over its watermark is shed with StatusBusy (plus a retry-after
// hint) instead of head-of-line-blocking the communication phase. Shedding
// happens strictly before buffering and before any BufferAck, and the
// storage queue is always drained, so acked work is never lost to shedding.
type OverloadConfig struct {
	Enabled bool
	// SetWatermark and GetWatermark are the fractions of BufferBytes
	// above which the matching op class is shed (defaults 0.5 and 0.9).
	// Writes carry their values and are rejected long before reads:
	// shedding a SET frees the most buffer memory per rejection, while
	// buffered GETs are header-sized and stay admitted until the buffer
	// is nearly exhausted.
	SetWatermark float64
	GetWatermark float64
	// QueueHigh sheds writes once the storage queue is this deep
	// (default 256 tasks); reads are shed at 4×QueueHigh. This bounds
	// queueing delay even when BufferBytes alone would admit more work
	// (e.g. a flood of header-sized GETs).
	QueueHigh int
	// RetryAfterUnit scales the retry-after hint carried by a busy
	// response: hint = unit × (queue depth / storage workers + 1), capped
	// at MaxRetryAfter (defaults 20 µs and 1 ms).
	RetryAfterUnit sim.Time
	MaxRetryAfter  sim.Time
}

func (oc *OverloadConfig) fill() {
	if oc.SetWatermark <= 0 {
		oc.SetWatermark = 0.5
	}
	if oc.GetWatermark <= 0 {
		oc.GetWatermark = 0.9
	}
	if oc.QueueHigh <= 0 {
		oc.QueueHigh = 256
	}
	if oc.RetryAfterUnit <= 0 {
		oc.RetryAfterUnit = 20 * sim.Microsecond
	}
	if oc.MaxRetryAfter <= 0 {
		oc.MaxRetryAfter = sim.Millisecond
	}
}

func (c *Config) fill() {
	if c.StorageWorkers <= 0 {
		c.StorageWorkers = 4
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 2 << 20
	}
	if c.RecvDepth <= 0 {
		c.RecvDepth = 16384
	}
	if c.ParseCost <= 0 {
		c.ParseCost = 400 * sim.Nanosecond
	}
	if c.BatchOpCost <= 0 {
		c.BatchOpCost = 100 * sim.Nanosecond
	}
	if c.Overload.Enabled {
		c.Overload.fill()
	}
}

// Host-side copy bandwidth for staging responses into registered buffers.
const memcpyBps = 8_000_000_000

func memcpyTime(size int) sim.Time {
	if size <= 0 {
		return 0
	}
	return sim.Time(float64(size) / float64(memcpyBps) * float64(sim.Second))
}

// Server is one Memcached server instance.
type Server struct {
	env *sim.Env
	st  *store.Store
	cfg Config

	// RDMA mode
	dev       *verbs.Device
	recvCQ    *verbs.CQ
	sendCQ    *verbs.CQ
	connByQPN map[int]*rdmaConn

	// IPoIB mode
	host *verbs.Host

	// Async pipeline
	slots *sim.Resource
	reqQ  *sim.Queue[task]

	// repl, when attached, replaces the plain storage phase with the
	// replicated one: admitted writes are forwarded to the key's peer
	// replicas before any ack or response.
	repl *replication.Replicator

	// bypass, when attached, is the published read-side directory clients
	// resolve GETs against with one-sided READs. The server's only duties
	// are answering OpDirQuery bootstraps and keeping the directory
	// coherent across crash/restart; steady-state reads cost it nothing.
	bypass *store.Directory
	// onColdRecovery hooks run after a cold-restart recovery scan rebuilds
	// the store, before requests are admitted.
	onColdRecovery []func(keys []string)

	started bool
	down    bool
	// killed is set by Kill (whole-node loss): only a cold restart may
	// follow, since RAM state is gone.
	killed bool
	// recovering is set from a cold restart until the SSD recovery scan
	// completes; every request in the window is answered StatusRecovering.
	recovering bool
	// gen counts crashes: work buffered or suspended across a crash carries
	// a stale gen and is discarded instead of answered after restart.
	gen uint64

	// stallWindows are scheduled fail-slow intervals for the storage pool
	// (AddWorkerStall): each task popped during a window pays a fixed extra
	// stall before its storage phase. This is the CPU/runtime-side gray
	// failure — the node answers everything, just late.
	stallWindows []stallWindow

	// Stats
	Requests int64
	Acks     int64
	// Batches counts coalesced BatchFrames received; their member ops are
	// included in Requests.
	Batches int64
	// Discarded counts requests dropped because they arrived (or finished a
	// storage phase) while the server was crashed.
	Discarded int64
	// Rejected counts requests answered StatusRecovering during a cold
	// restart's recovery window.
	Rejected int64
	// ShedSets and ShedGets count requests rejected StatusBusy at
	// admission, by op class; writes are shed first. Their sum is the
	// server's total busy rejections.
	ShedSets int64
	ShedGets int64
	// BufferPeak and QueuePeak are high-water marks of async buffer bytes
	// in use and storage-queue depth, maintained on both the blocking and
	// bounded-admission paths — the overload experiment's evidence that
	// the unprotected queue grows without bound.
	BufferPeak int
	QueuePeak  int
	// Stalled counts storage tasks delayed by an AddWorkerStall window.
	Stalled int64
	// Recovery holds the cold-restart counters ("pages-scanned",
	// "pages-recovered", "pages-discarded", "items-recovered", ...).
	Recovery *metrics.Counters
	// LastRecovery is the most recent cold-restart recovery report;
	// RecoveryTime is its virtual duration.
	LastRecovery hybridslab.RecoveryReport
	RecoveryTime sim.Time
}

type rdmaConn struct {
	qp *verbs.QP
}

// stallWindow is one scheduled storage-pool stall interval.
type stallWindow struct {
	from, to sim.Time
	stall    sim.Time
}

// AddWorkerStall schedules a fail-slow window on the storage pool: every
// task a worker pops in [from, to) pays an extra stall before executing.
// Deterministic and replayable; with no windows the worker loop is
// untouched, keeping unfaulted runs bit-identical.
func (s *Server) AddWorkerStall(from, to sim.Time, stall sim.Time) {
	s.stallWindows = append(s.stallWindows, stallWindow{from: from, to: to, stall: stall})
}

// stallFor returns the worst scheduled stall covering time at.
func (s *Server) stallFor(at sim.Time) sim.Time {
	var d sim.Time
	for _, w := range s.stallWindows {
		if at >= w.from && at < w.to && w.stall > d {
			d = w.stall
		}
	}
	return d
}

type task struct {
	req  *protocol.Request
	conn *rdmaConn
	// batch is set instead of req for a coalesced frame: one storage worker
	// executes the whole batch's storage phases back-to-back.
	batch *protocol.BatchFrame
	// gen is the server generation at buffering time; a worker popping a
	// task from before a crash discards it instead of answering.
	gen uint64
	// fwd/fwds are the replication rounds opened at admission time for the
	// task's write(s); the peer applies overlap the local storage phase.
	fwd  *replication.Forward
	fwds []*replication.Forward
	// ackDeferred marks a requested BufferAck that replication withheld at
	// admission: the worker sends it only once the write is applied AND
	// replicated, so an acked write is durable on every replica.
	ackDeferred bool
}

// NewRDMA creates an RDMA-transport server on node.
func NewRDMA(env *sim.Env, node *simnet.Node, st *store.Store, cfg Config) *Server {
	cfg.fill()
	if cfg.Name == "" {
		cfg.Name = "server:" + node.Name()
	}
	s := &Server{
		env:       env,
		st:        st,
		cfg:       cfg,
		dev:       verbs.OpenDevice(node),
		connByQPN: make(map[int]*rdmaConn),
		Recovery:  metrics.NewCounters(),
	}
	s.recvCQ = s.dev.CreateCQ(0)
	s.sendCQ = s.dev.CreateCQ(0)
	return s
}

// NewIPoIB creates an IPoIB-transport server on node (default Memcached).
func NewIPoIB(env *sim.Env, node *simnet.Node, st *store.Store, cfg Config) *Server {
	cfg.fill()
	if cfg.Name == "" {
		cfg.Name = "server:" + node.Name()
	}
	return &Server{
		env:      env,
		st:       st,
		cfg:      cfg,
		host:     verbs.NewHost(node),
		Recovery: metrics.NewCounters(),
	}
}

// Store returns the server's item store.
func (s *Server) Store() *store.Store { return s.st }

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// Device returns the RDMA device (nil in IPoIB mode).
func (s *Server) Device() *verbs.Device { return s.dev }

// Host returns the IPoIB socket host (nil in RDMA mode).
func (s *Server) Host() *verbs.Host { return s.host }

// RecvDepth returns the per-connection credit count clients must respect.
func (s *Server) RecvDepth() int { return s.cfg.RecvDepth }

// Extensions bundles every optional server subsystem behind one attach
// call, so design constructors hand the server a single extension set
// instead of invoking a growing pile of AttachX hooks.
type Extensions struct {
	// Replicator makes the storage phase the replicated one (see
	// AttachReplicator).
	Replicator *replication.Replicator
	// BypassDirectory publishes the store's read side for one-sided-READ
	// GETs (see AttachBypassDirectory).
	BypassDirectory *store.Directory
	// OnColdRecovery runs after a cold-restart recovery scan rebuilds the
	// store, with the recovered key set, before requests are admitted.
	OnColdRecovery func(keys []string)
}

// Attach installs an extension bundle. Call before the simulation runs;
// fields left nil are skipped, and repeated calls accumulate.
func (s *Server) Attach(ext Extensions) {
	if ext.Replicator != nil {
		s.AttachReplicator(ext.Replicator)
	}
	if ext.BypassDirectory != nil {
		s.AttachBypassDirectory(ext.BypassDirectory)
	}
	if ext.OnColdRecovery != nil {
		s.onColdRecovery = append(s.onColdRecovery, ext.OnColdRecovery)
	}
}

// AttachBypassDirectory installs the published read-side directory: the
// store's read view is wired to it, and OpDirQuery bootstraps answer with
// its geometry. Attach before the simulation runs; RDMA servers only.
func (s *Server) AttachBypassDirectory(d *store.Directory) {
	if s.dev == nil {
		panic("server: bypass directory requires the RDMA transport")
	}
	s.bypass = d
	s.st.SetReadView(d)
}

// BypassDirectory returns the attached directory (nil when not attached).
func (s *Server) BypassDirectory() *store.Directory { return s.bypass }

// AttachReplicator installs the server's replicator: the storage phase
// becomes the replicated one, and requested BufferAcks on writes are
// withheld until the replication chain completes. Attach before the
// simulation runs; RDMA servers only.
func (s *Server) AttachReplicator(r *replication.Replicator) {
	if s.dev == nil {
		panic("server: replication requires the RDMA transport")
	}
	s.repl = r
	// A crashed or still-recovering node neither applies nor acks peer
	// frames; silence (not a negative ack) is what lets coordinators
	// distinguish "retry later" from "stale epoch".
	r.SetDown(func() bool { return s.down || s.recovering })
	// Foreground-load signal for the background pacer: consulted only when
	// the replicator's pacer is enabled, so attaching it costs nothing.
	r.SetBusy(s.foregroundBusy)
	// A corrupt local read opens a repair-pull immediately — the key heals
	// from peers even if no client ever retries it.
	s.st.SetCorruptNotify(r.OnCorrupt)
}

// foregroundBusy reports whether the async pipeline currently holds queued
// foreground work: storage tasks waiting beyond the worker pool, or
// buffered bytes above half the shed watermark. The replication pacer
// yields background scrub/migration rounds while this holds — deliberately
// engaging well below the point where admission starts rejecting SETs,
// because once the server sheds foreground work the buffer never rises
// past the shed watermark and a probe at that level would never fire; the
// pacer is the gentle first line of defense, shedding the last resort.
// Sync-pipeline (or not-yet-started) servers report idle — they have no
// queue to protect.
func (s *Server) foregroundBusy() bool {
	if s.slots == nil || s.reqQ == nil {
		return false
	}
	if s.reqQ.Len() >= s.cfg.StorageWorkers {
		return true
	}
	frac := s.cfg.Overload.SetWatermark
	if frac <= 0 {
		frac = 0.5
	}
	frac /= 2
	return float64(s.slots.InUse()) > frac*float64(s.slots.Total())
}

// Replicator returns the attached replicator (nil when unreplicated).
func (s *Server) Replicator() *replication.Replicator { return s.repl }

// exec runs one buffered request's storage phase, replicated when a
// replicator is attached.
func (s *Server) exec(p *sim.Proc, t task) *protocol.Response {
	if s.repl != nil {
		return s.repl.Execute(p, t.req, t.fwd)
	}
	return degradeCorrupt(s.st.Handle(p, t.req))
}

// execBatch runs a buffered frame's storage phases back-to-back.
func (s *Server) execBatch(p *sim.Proc, t task) []*protocol.Response {
	if s.repl != nil {
		return s.repl.ExecuteBatch(p, t.batch.Reqs, t.fwds)
	}
	resps := s.st.HandleBatch(p, t.batch.Reqs)
	for i, resp := range resps {
		resps[i] = degradeCorrupt(resp)
	}
	return resps
}

// degradeCorrupt converts a StatusCorrupt read into a plain miss: with no
// replicator attached there is nowhere to repair from, and the one thing an
// unreplicated server must still guarantee is that quarantined garbage is
// never served — a miss lets the client re-populate from its backend.
// (Replicated servers intercept the status earlier and repair-pull instead.)
func degradeCorrupt(resp *protocol.Response) *protocol.Response {
	if resp != nil && resp.Status == protocol.StatusCorrupt {
		resp.Status = protocol.StatusNotFound
		resp.Value = nil
	}
	return resp
}

// AcceptQP creates and connects a server-side QP for a client QP, and
// pre-posts the receive pool. Call before Start or during the run.
func (s *Server) AcceptQP(clientQP *verbs.QP) *verbs.QP {
	if s.dev == nil {
		panic("server: AcceptQP on an IPoIB server")
	}
	qp := s.dev.CreateQP(s.sendCQ, s.recvCQ)
	verbs.Connect(clientQP, qp)
	for i := 0; i < s.cfg.RecvDepth; i++ {
		qp.PostRecv(verbs.RecvWR{})
	}
	s.connByQPN[qp.QPN()] = &rdmaConn{qp: qp}
	return qp
}

// Start launches the server's processes.
func (s *Server) Start() {
	if s.started {
		panic("server: double Start")
	}
	s.started = true
	if s.cfg.Pipeline == Async {
		s.slots = sim.NewResource(s.env, s.cfg.BufferBytes)
		s.reqQ = sim.NewQueue[task](s.env, 0)
		for i := 0; i < s.cfg.StorageWorkers; i++ {
			s.env.Spawn(fmt.Sprintf("%s/worker%d", s.cfg.Name, i), s.storageWorker)
		}
	}
	if s.dev != nil {
		s.env.Spawn(s.cfg.Name+"/dispatcher", s.rdmaDispatcher)
	} else {
		s.env.Spawn(s.cfg.Name+"/accept", s.ipoibAcceptLoop)
	}
}

// Down reports whether the server is currently crashed.
func (s *Server) Down() bool { return s.down }

// Crash fails the server process: from now until Restart, every request is
// discarded without a response. The fabric and NIC stay up (receives are
// re-posted so retried requests don't overflow the QP), and the store keeps
// its contents — this models a process wedge / fail-stop with warm restart,
// the case clients must survive via deadlines and failover.
//
// Any eviction-coalescing window open at crash time is torn down: its
// deferred SSD writes die with the process, so Restart never resumes a
// half-open batch (the suspended worker's EndEvictionBatch becomes a no-op
// and its finished storage work is discarded by the generation check).
func (s *Server) Crash() {
	s.down = true
	s.gen++
	s.st.Manager().AbortEvictionBatches()
	if s.bypass != nil {
		// The NIC keeps serving one-sided READs of the registered MRs even
		// while the process is dead; quiesce the directory so those READs
		// observe emptiness (⇒ RPC fallback), never values that may not
		// survive the restart.
		s.bypass.Quiesce()
	}
}

// Restart brings a crashed server back warm. Requests arriving from now on
// are served normally against the intact store.
func (s *Server) Restart() {
	if s.killed {
		panic("server: warm Restart after Kill — RAM is gone, use RestartCold")
	}
	s.down = false
	// Warm restart: the store survived, so the directory quiesced at crash
	// time is simply republished.
	s.st.PublishAll()
}

// Kill models whole-node loss, the failure mode replication exists for:
// the process crashes and everything RAM-resident dies with it — the item
// table, pending buffers, open replication forwards, and the epoch records
// proving which recovered values are fresh. With wipeSSD the durable
// extents are discarded too (replacement hardware): a later RestartCold
// then recovers nothing and the node returns empty, to be refilled by
// anti-entropy. Only RestartCold may follow a Kill.
func (s *Server) Kill(wipeSSD bool) {
	s.Crash()
	s.killed = true
	if s.repl != nil {
		s.repl.Wipe()
	}
	if wipeSSD {
		s.st.Manager().WipeSSD()
	}
}

// RestartCold brings a crashed server back after a power cycle: RAM state is
// gone and the store must be rebuilt from the SSD. The recovery scan runs as
// its own process; until it completes, every request is answered
// StatusRecovering so clients fail fast (and guarded ones retry or fail
// over) instead of queueing behind the scan.
func (s *Server) RestartCold() {
	s.down = false
	s.killed = false
	s.recovering = true
	s.env.Spawn(s.cfg.Name+"/recovery", func(p *sim.Proc) {
		t0 := p.Now()
		rep := s.st.RecoverCold(p)
		s.LastRecovery = rep
		s.RecoveryTime = p.Now() - t0
		s.Recovery.Add("recoveries", 1)
		s.Recovery.Add("pages-scanned", rep.PagesScanned)
		s.Recovery.Add("pages-recovered", rep.PagesRecovered)
		s.Recovery.Add("pages-discarded", rep.PagesDiscarded)
		s.Recovery.Add("pages-torn", rep.PagesTorn)
		s.Recovery.Add("pages-uncommitted", rep.PagesUncommitted)
		s.Recovery.Add("items-recovered", rep.ItemsRecovered)
		s.Recovery.Add("items-missing", rep.ItemsMissing)
		if s.repl != nil || len(s.onColdRecovery) > 0 {
			keys := s.st.Keys()
			if s.repl != nil {
				// The SSD resurrected values, but the epoch table proving
				// their freshness died with the node: every recovered key is
				// suspect until a peer replica confirms it.
				s.repl.OnColdRecovery(keys)
			}
			for _, fn := range s.onColdRecovery {
				fn(keys)
			}
		}
		if s.repl == nil {
			// Republish the recovered read side. Under replication the
			// directory instead refills lazily as anti-entropy confirms or
			// rewrites keys — recovered values are suspect until then, and
			// a one-sided READ must never leak a value RPC would withhold.
			s.st.PublishAll()
		}
		s.recovering = false
	})
}

// Recovering reports whether a cold-restart recovery scan is in progress.
func (s *Server) Recovering() bool { return s.recovering }

// ScheduleCrash arranges a crash at from and a restart at to (virtual time).
func (s *Server) ScheduleCrash(from, to sim.Time) {
	if to <= from {
		panic("server: ScheduleCrash window must have to > from")
	}
	s.env.At(from, s.cfg.Name+"/crash", func(p *sim.Proc) { s.Crash() })
	s.env.At(to, s.cfg.Name+"/restart", func(p *sim.Proc) { s.Restart() })
}

// rdmaDispatcher drains the shared receive CQ.
func (s *Server) rdmaDispatcher(p *sim.Proc) {
	for {
		c := s.recvCQ.WaitPoll(p)
		conn := s.connByQPN[c.QPN]
		if conn == nil {
			panic(fmt.Sprintf("server: completion for unknown QP %d", c.QPN))
		}
		switch pl := c.Payload.(type) {
		case *protocol.Request:
			s.dispatchOne(p, conn, pl)
		case *protocol.BatchFrame:
			s.dispatchBatch(p, conn, pl)
		default:
			panic("server: non-request payload on receive CQ")
		}
	}
}

// dispatchOne handles a single-op receive.
func (s *Server) dispatchOne(p *sim.Proc, conn *rdmaConn, req *protocol.Request) {
	if s.down {
		// Crashed: swallow the request. Re-post the receive so retried
		// requests don't hit receiver-not-ready, but never respond — the
		// client's credit is stranded until its deadline machinery
		// reclaims it.
		s.Discarded++
		conn.qp.PostRecv(verbs.RecvWR{})
		return
	}
	p.Sleep(s.cfg.ParseCost)
	s.Requests++
	if s.recovering {
		// Cold-restart recovery in progress: fail fast with a retryable
		// status instead of queueing the request behind the scan.
		s.Rejected++
		s.respond(p, conn, req, &protocol.Response{
			Op: protocol.OpResponse, ReqID: req.ReqID,
			Status: protocol.StatusRecovering,
		})
		conn.qp.PostRecv(verbs.RecvWR{})
		return
	}
	if req.Op == protocol.OpDirQuery {
		// Bypass bootstrap: answer with the directory geometry inline —
		// this is control-plane work, never queued behind storage. The
		// store's published hot-key set piggybacks on the same payload.
		resp := &protocol.Response{Op: protocol.OpResponse, ReqID: req.ReqID}
		if s.bypass != nil {
			info := s.bypass.Info()
			info.Hot, info.HotVersion = s.st.HotSnapshot()
			if s.repl != nil {
				info.MemberEpoch = s.repl.MembershipEpoch()
			}
			resp.Status = protocol.StatusOK
			resp.Value = &info
			resp.ValueSize = info.WireSize()
		} else {
			resp.Status = protocol.StatusNotFound
		}
		s.respond(p, conn, req, resp)
		conn.qp.PostRecv(verbs.RecvWR{})
		return
	}
	gen0 := s.gen
	if s.cfg.Pipeline == Sync {
		// Storage phase inline; the receive slot is held until the
		// request finishes (the client's credit comes back with the
		// response).
		var resp *protocol.Response
		if s.repl != nil {
			resp = s.repl.Execute(p, req, s.repl.Begin(p, req))
		} else {
			resp = s.st.Handle(p, req)
		}
		if s.down || s.gen != gen0 {
			// Crashed mid-storage-phase (e.g. during a hybrid eviction):
			// the response is lost with the process, even if the server
			// already restarted by the time the storage phase unwound.
			s.Discarded++
			conn.qp.PostRecv(verbs.RecvWR{})
			return
		}
		s.respond(p, conn, req, resp)
		conn.qp.PostRecv(verbs.RecvWR{})
		return
	}
	// Async: communication phase only. Reserve buffer memory for the
	// request (header + any carried value): this is where
	// backpressure forms when storage falls behind. Bounded admission
	// never blocks here: an over-watermark request is shed with
	// StatusBusy before any ack, and the dispatcher keeps serving the
	// classes still under their watermarks.
	size := req.WireSize()
	if s.cfg.Overload.Enabled {
		if s.overLimit(size, isWrite(req.Op)) || !s.slots.TryAcquireN(size) {
			s.shed(p, conn, req)
			conn.qp.PostRecv(verbs.RecvWR{})
			return
		}
	} else {
		s.slots.AcquireN(p, size)
	}
	if u := s.slots.InUse(); u > s.BufferPeak {
		s.BufferPeak = u
	}
	conn.qp.PostRecv(verbs.RecvWR{})
	t := task{req: req, conn: conn, gen: gen0}
	if s.repl != nil {
		// Open the replication round now so peer applies overlap the local
		// slab phase; the early ack for writes moves past the ack wait so
		// "acked" keeps meaning "durable" — now on every replica.
		t.fwd = s.repl.Begin(p, req)
		t.ackDeferred = req.AckWanted && isWrite(req.Op)
	}
	if req.AckWanted && !t.ackDeferred {
		s.sendAck(p, conn, req)
	}
	s.reqQ.Put(p, t)
	if n := s.reqQ.Len(); n > s.QueuePeak {
		s.QueuePeak = n
	}
}

// isWrite reports whether op belongs to the shed-first write class: every
// opcode that mutates the store. GETs are the protected class.
func isWrite(op protocol.Opcode) bool { return op != protocol.OpGet }

// overLimit reports whether admitting size more buffered bytes would take
// the op class past its buffer watermark or storage-queue depth bound.
func (s *Server) overLimit(size int, write bool) bool {
	oc := &s.cfg.Overload
	frac, qhigh := oc.GetWatermark, 4*oc.QueueHigh
	if write {
		frac, qhigh = oc.SetWatermark, oc.QueueHigh
	}
	if float64(s.slots.InUse()+size) > frac*float64(s.slots.Total()) {
		return true
	}
	return s.reqQ.Len() >= qhigh
}

// shed answers one request StatusBusy with a retry-after hint scaled by
// the storage backlog. The request was never buffered and never acked —
// admission happens strictly before the BufferAck — so an acked bset can
// never be lost to shedding.
func (s *Server) shed(p *sim.Proc, conn *rdmaConn, req *protocol.Request) {
	if isWrite(req.Op) {
		s.ShedSets++
	} else {
		s.ShedGets++
	}
	oc := &s.cfg.Overload
	hint := oc.RetryAfterUnit * sim.Time(s.reqQ.Len()/s.cfg.StorageWorkers+1)
	if hint > oc.MaxRetryAfter {
		hint = oc.MaxRetryAfter
	}
	s.respond(p, conn, req, &protocol.Response{
		Op: protocol.OpResponse, ReqID: req.ReqID,
		Status:       protocol.StatusBusy,
		RetryAfterUS: uint32(hint / sim.Microsecond),
	})
}

// dispatchBatch unpacks a coalesced frame in one communication phase: one
// parse, one receive-repost, and — on the async pipeline — one buffer
// reservation, one early BufferAck covering every member, and one task so a
// single storage worker runs the batch's storage phases back-to-back.
func (s *Server) dispatchBatch(p *sim.Proc, conn *rdmaConn, frame *protocol.BatchFrame) {
	n := len(frame.Reqs)
	if s.down {
		s.Discarded += int64(n)
		conn.qp.PostRecv(verbs.RecvWR{})
		return
	}
	p.Sleep(s.cfg.ParseCost + sim.Time(n-1)*s.cfg.BatchOpCost)
	s.Requests += int64(n)
	s.Batches++
	if s.recovering {
		// Reject every member fast; one receive-repost for the frame.
		s.Rejected += int64(n)
		for _, req := range frame.Reqs {
			s.respond(p, conn, req, &protocol.Response{
				Op: protocol.OpResponse, ReqID: req.ReqID,
				Status: protocol.StatusRecovering,
			})
		}
		conn.qp.PostRecv(verbs.RecvWR{})
		return
	}
	gen0 := s.gen
	if s.cfg.Pipeline == Sync {
		var resps []*protocol.Response
		if s.repl != nil {
			resps = s.repl.ExecuteBatch(p, frame.Reqs, s.beginAll(p, frame.Reqs))
		} else {
			resps = s.st.HandleBatch(p, frame.Reqs)
		}
		if s.down || s.gen != gen0 {
			s.Discarded += int64(n)
			conn.qp.PostRecv(verbs.RecvWR{})
			return
		}
		for i, resp := range resps {
			s.respond(p, conn, frame.Reqs[i], resp)
		}
		conn.qp.PostRecv(verbs.RecvWR{})
		return
	}
	// Async: reserve buffer memory for the whole frame at once, give the
	// client its credit back with a single receive-repost, and ack the
	// batch as a unit. Under bounded admission the frame is one unit: it
	// is admitted under the write watermark if any member mutates, or
	// shed whole (one busy response per member, one receive-repost).
	size := frame.WireSize()
	if s.cfg.Overload.Enabled {
		write := false
		for _, req := range frame.Reqs {
			if isWrite(req.Op) {
				write = true
				break
			}
		}
		if s.overLimit(size, write) || !s.slots.TryAcquireN(size) {
			for _, req := range frame.Reqs {
				s.shed(p, conn, req)
			}
			conn.qp.PostRecv(verbs.RecvWR{})
			return
		}
	} else {
		s.slots.AcquireN(p, size)
	}
	if u := s.slots.InUse(); u > s.BufferPeak {
		s.BufferPeak = u
	}
	conn.qp.PostRecv(verbs.RecvWR{})
	t := task{batch: frame, conn: conn, gen: gen0}
	if s.repl != nil {
		t.fwds = s.beginAll(p, frame.Reqs)
		for _, req := range frame.Reqs {
			if isWrite(req.Op) {
				// The batch-wide ack covers every member, so it moves past
				// the whole batch's replication rounds if any member writes.
				t.ackDeferred = frame.AckWanted
				break
			}
		}
	}
	if frame.AckWanted && !t.ackDeferred {
		s.sendBatchAck(p, conn, frame)
	}
	s.reqQ.Put(p, t)
	if n := s.reqQ.Len(); n > s.QueuePeak {
		s.QueuePeak = n
	}
}

// beginAll opens the replication rounds for a batch's members back-to-back
// so all their forwards are in flight before any storage phase starts.
func (s *Server) beginAll(p *sim.Proc, reqs []*protocol.Request) []*replication.Forward {
	fwds := make([]*replication.Forward, len(reqs))
	for i, req := range reqs {
		fwds[i] = s.repl.Begin(p, req)
	}
	return fwds
}

// storageWorker executes buffered requests and responds.
func (s *Server) storageWorker(p *sim.Proc) {
	for {
		t, ok := s.reqQ.Get(p)
		if !ok {
			return
		}
		if len(s.stallWindows) > 0 {
			if d := s.stallFor(p.Now()); d > 0 {
				s.Stalled++
				p.Sleep(d)
			}
		}
		if t.batch != nil {
			s.workBatch(p, t)
			continue
		}
		if s.down || t.gen != s.gen {
			// Crashed, or a task buffered before a crash: the buffered
			// request died with the process.
			s.Discarded++
			s.slots.ReleaseN(t.req.WireSize())
			continue
		}
		resp := s.exec(p, t)
		if s.down || t.gen != s.gen {
			// Crashed mid-storage-phase: drop the finished work.
			s.Discarded++
			s.slots.ReleaseN(t.req.WireSize())
			continue
		}
		if t.ackDeferred && resp.Status != protocol.StatusNoReplica {
			// The write is applied and every replica acked: only now is the
			// early ack honest.
			s.sendAck(p, t.conn, t.req)
		}
		s.respond(p, t.conn, t.req, resp)
		s.slots.ReleaseN(t.req.WireSize())
	}
}

// workBatch runs a buffered frame's storage phases back-to-back on one
// worker — merging the evictions its Sets trigger into larger sequential
// SSD flushes — then scatters one response per member op.
func (s *Server) workBatch(p *sim.Proc, t task) {
	size := t.batch.WireSize()
	n := int64(len(t.batch.Reqs))
	if s.down || t.gen != s.gen {
		s.Discarded += n
		s.slots.ReleaseN(size)
		return
	}
	resps := s.execBatch(p, t)
	if s.down || t.gen != s.gen {
		// Crashed mid-storage-phase: drop the finished work.
		s.Discarded += n
		s.slots.ReleaseN(size)
		return
	}
	if t.ackDeferred {
		// Every member's replication round has completed (member failures
		// carry their own NoReplica status); the batch-wide ack is honest.
		s.sendBatchAck(p, t.conn, t.batch)
	}
	for i, resp := range resps {
		s.respond(p, t.conn, t.batch.Reqs[i], resp)
	}
	s.slots.ReleaseN(size)
}

// respond RDMA-WRITEs the response into the client's registered response
// region, with the request id as immediate data. The time to stage the
// value into a registered bounce buffer plus the doorbell is the server's
// "Server Response" stage.
func (s *Server) respond(p *sim.Proc, conn *rdmaConn, req *protocol.Request, resp *protocol.Response) {
	t0 := p.Now()
	p.Sleep(memcpyTime(resp.ValueSize))
	conn.qp.PostSend(p, verbs.SendWR{
		WRID:     resp.ReqID,
		Op:       verbs.OpWriteImm,
		Size:     resp.WireSize(),
		Payload:  resp,
		RemoteMR: req.RespMR,
		Imm:      resp.ReqID,
	})
	s.st.Prof.Add(metrics.StageResponse, p.Now()-t0)
}

// sendAck notifies the client that its request is buffered server-side and
// its buffers are reusable (async design; carries a flow-control credit).
func (s *Server) sendAck(p *sim.Proc, conn *rdmaConn, req *protocol.Request) {
	ack := &protocol.Response{Op: protocol.OpBufferAck, ReqID: req.ReqID, Status: protocol.StatusOK}
	conn.qp.PostSend(p, verbs.SendWR{
		WRID:     req.ReqID,
		Op:       verbs.OpWriteImm,
		Size:     ack.WireSize(),
		Payload:  ack,
		RemoteMR: req.RespMR,
		Imm:      req.ReqID,
	})
	s.Acks++
}

// sendBatchAck acknowledges a whole coalesced frame with one BufferAck
// carrying the batch id; the client fans it out to every member and takes
// its single flow-control credit back.
func (s *Server) sendBatchAck(p *sim.Proc, conn *rdmaConn, frame *protocol.BatchFrame) {
	ack := &protocol.Response{Op: protocol.OpBufferAck, ReqID: frame.BatchID, Status: protocol.StatusOK}
	conn.qp.PostSend(p, verbs.SendWR{
		WRID:     frame.BatchID,
		Op:       verbs.OpWriteImm,
		Size:     ack.WireSize(),
		Payload:  ack,
		RemoteMR: frame.Reqs[0].RespMR,
		Imm:      frame.BatchID,
	})
	s.Acks++
}

// ipoibAcceptLoop accepts stream connections and spawns a handler per
// connection (default Memcached's thread-per-connection event handling,
// always the sync design).
func (s *Server) ipoibAcceptLoop(p *sim.Proc) {
	n := 0
	for {
		stream, ok := s.host.Accept(p)
		if !ok {
			return
		}
		n++
		s.env.Spawn(fmt.Sprintf("%s/conn%d", s.cfg.Name, n), func(hp *sim.Proc) {
			s.ipoibHandler(hp, stream)
		})
	}
}

func (s *Server) ipoibHandler(p *sim.Proc, stream *verbs.Stream) {
	for {
		msg, ok := stream.Recv(p)
		if !ok {
			return
		}
		switch pl := msg.Payload.(type) {
		case *protocol.Request:
			if s.down {
				s.Discarded++
				continue
			}
			p.Sleep(s.cfg.ParseCost)
			s.Requests++
			if s.recovering {
				s.Rejected++
				s.ipoibRespond(p, stream, &protocol.Response{
					Op: protocol.OpResponse, ReqID: pl.ReqID,
					Status: protocol.StatusRecovering,
				})
				continue
			}
			gen0 := s.gen
			resp := s.st.Handle(p, pl)
			if s.down || s.gen != gen0 {
				s.Discarded++
				continue
			}
			s.ipoibRespond(p, stream, resp)
		case *protocol.BatchFrame:
			// One vectored frame (libmemcached buffering mode): unpack in
			// one parse pass, run the storage phases back-to-back, answer
			// each op in order.
			n := int64(len(pl.Reqs))
			if s.down {
				s.Discarded += n
				continue
			}
			p.Sleep(s.cfg.ParseCost + sim.Time(n-1)*s.cfg.BatchOpCost)
			s.Requests += n
			s.Batches++
			if s.recovering {
				s.Rejected += n
				for _, req := range pl.Reqs {
					s.ipoibRespond(p, stream, &protocol.Response{
						Op: protocol.OpResponse, ReqID: req.ReqID,
						Status: protocol.StatusRecovering,
					})
				}
				continue
			}
			gen0 := s.gen
			resps := s.st.HandleBatch(p, pl.Reqs)
			if s.down || s.gen != gen0 {
				s.Discarded += n
				continue
			}
			for _, resp := range resps {
				s.ipoibRespond(p, stream, resp)
			}
		default:
			panic("server: non-request payload on IPoIB stream")
		}
	}
}

func (s *Server) ipoibRespond(p *sim.Proc, stream *verbs.Stream, resp *protocol.Response) {
	t0 := p.Now()
	p.Sleep(memcpyTime(resp.ValueSize))
	stream.Send(p, resp.WireSize(), resp)
	s.st.Prof.Add(metrics.StageResponse, p.Now()-t0)
}
