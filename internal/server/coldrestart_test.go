package server

import (
	"fmt"
	"testing"

	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

// TestColdRestartRecoversCommittedState power-cycles a hybrid server and
// verifies the full recovery pipeline: requests racing the recovery scan are
// answered with StatusRecovering (not dropped, not wedged), and once the
// scan finishes the server serves exactly the committed SSD state — every
// hit byte-correct, RAM-resident items lost to the power cut.
func TestColdRestartRecoversCommittedState(t *testing.T) {
	r := newDirectRig(t, 1<<20) // 1 MB of slab: 32 KB sets evict almost at once
	const fill = 40
	var during *protocol.Response
	hits := 0
	r.env.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < fill; i++ {
			r.sendReq(p, &protocol.Request{
				Op: protocol.OpSet, ReqID: uint64(i + 1),
				Key: fmt.Sprintf("k%02d", i), ValueSize: 32 << 10, Value: i,
			})
			if got := r.awaitResp(p); got.Status != protocol.StatusStored {
				t.Errorf("fill set %d status %v", i, got.Status)
			}
		}
		r.srv.Crash()
		p.Sleep(500 * sim.Microsecond)
		r.srv.RestartCold()
		if !r.srv.Recovering() {
			t.Error("Recovering() = false right after RestartCold")
		}
		// A request racing the scan gets an immediate recovering answer.
		r.sendReq(p, &protocol.Request{Op: protocol.OpGet, ReqID: 100, Key: "k00"})
		during = r.awaitResp(p)
		for r.srv.Recovering() {
			p.Sleep(sim.Millisecond)
		}
		for i := 0; i < fill; i++ {
			r.sendReq(p, &protocol.Request{
				Op: protocol.OpGet, ReqID: uint64(200 + i), Key: fmt.Sprintf("k%02d", i),
			})
			resp := r.awaitResp(p)
			switch resp.Status {
			case protocol.StatusOK:
				hits++
				if resp.Value != i {
					t.Errorf("post-recovery get k%02d = %v, want %d", i, resp.Value, i)
				}
			case protocol.StatusNotFound:
				// RAM-resident at the power cut, or on a discarded page.
			default:
				t.Errorf("post-recovery get k%02d status %v", i, resp.Status)
			}
		}
	})
	r.env.Run()

	if during == nil {
		t.Fatal("no answer to the request sent during recovery")
	}
	if during.Status != protocol.StatusRecovering || during.ReqID != 100 {
		t.Fatalf("during-recovery response %+v, want ReqID 100 StatusRecovering", during)
	}
	if r.srv.Rejected < 1 {
		t.Errorf("Rejected = %d, want >= 1", r.srv.Rejected)
	}
	rep := r.srv.LastRecovery
	if rep.PagesScanned == 0 || rep.PagesScanned != rep.PagesRecovered+rep.PagesDiscarded {
		t.Errorf("inconsistent recovery report: %+v", rep)
	}
	if hits == 0 {
		t.Fatal("nothing survived the cold restart despite committed flushes")
	}
	if int64(hits) != rep.ItemsRecovered {
		t.Errorf("served %d recovered keys, report says %d", hits, rep.ItemsRecovered)
	}
	if r.srv.RecoveryTime <= 0 {
		t.Errorf("RecoveryTime = %v, want > 0", r.srv.RecoveryTime)
	}
	if got := r.srv.Recovery.Get("recoveries"); got != 1 {
		t.Errorf("recovery counter = %d, want 1", got)
	}
}
