package backend

import (
	"testing"

	"hybridkv/internal/sim"
)

func TestFetchPaysPenalty(t *testing.T) {
	env := sim.NewEnv()
	db := New(env, Config{})
	var v any
	env.Spawn("client", func(p *sim.Proc) { v = db.Fetch(p, "k1") })
	end := env.Run()
	if end != DefaultPenalty {
		t.Errorf("fetch took %v, want %v", end, DefaultPenalty)
	}
	if v != "db:k1" {
		t.Errorf("fetch returned %v", v)
	}
	if db.Accesses != 1 || db.TimeSpent != DefaultPenalty {
		t.Errorf("stats %d/%v", db.Accesses, db.TimeSpent)
	}
}

func TestCustomPenalty(t *testing.T) {
	env := sim.NewEnv()
	db := New(env, Config{Penalty: 500 * sim.Microsecond})
	env.Spawn("client", func(p *sim.Proc) { db.Fetch(p, "x") })
	if end := env.Run(); end != 500*sim.Microsecond {
		t.Errorf("fetch took %v", end)
	}
}

func TestConcurrencyBound(t *testing.T) {
	env := sim.NewEnv()
	db := New(env, Config{Penalty: sim.Millisecond, Concurrency: 2})
	for i := 0; i < 4; i++ {
		env.Spawn("client", func(p *sim.Proc) { db.Fetch(p, "k") })
	}
	if end := env.Run(); end != 2*sim.Millisecond {
		t.Errorf("4 fetches at depth 2 took %v, want 2ms", end)
	}
}

func TestStoreCharges(t *testing.T) {
	env := sim.NewEnv()
	db := New(env, Config{})
	env.Spawn("client", func(p *sim.Proc) { db.Store(p, "k", 1) })
	if end := env.Run(); end != DefaultPenalty {
		t.Errorf("store took %v", end)
	}
	if db.Accesses != 1 {
		t.Errorf("accesses %d", db.Accesses)
	}
}
