// Package backend simulates the data store behind the Memcached caching
// layer (a database in online data processing, a parallel file system for
// burst-buffer workloads). Every access pays a configurable penalty — the
// paper assumes "less than 2 ms" per miss — which is what makes in-memory
// designs collapse when the working set outgrows RAM (Figures 1(b)/2(b)).
package backend

import (
	"hybridkv/internal/sim"
)

// DefaultPenalty matches the paper's assumption of a miss penalty < 2 ms.
const DefaultPenalty = 1800 * sim.Microsecond

// DB is the backend store. It logically holds every key of the workload's
// keyspace: a fetch always succeeds, it is just slow.
type DB struct {
	env     *sim.Env
	penalty sim.Time
	depth   *sim.Resource

	// Accesses counts backend round trips (cache misses).
	Accesses int64
	// TimeSpent accumulates total penalty time paid.
	TimeSpent sim.Time
}

// Config tunes the backend model.
type Config struct {
	// Penalty is the per-access latency (default DefaultPenalty).
	Penalty sim.Time
	// Concurrency bounds in-flight backend queries (default 64 — a
	// connection-pooled database).
	Concurrency int
}

// New creates a backend database.
func New(env *sim.Env, cfg Config) *DB {
	if cfg.Penalty <= 0 {
		cfg.Penalty = DefaultPenalty
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	return &DB{
		env:     env,
		penalty: cfg.Penalty,
		depth:   sim.NewResource(env, cfg.Concurrency),
	}
}

// Penalty returns the configured per-access latency.
func (db *DB) Penalty() sim.Time { return db.penalty }

// Fetch retrieves the authoritative value for key, blocking p for the miss
// penalty. The returned token is the backend's value for the key.
func (db *DB) Fetch(p *sim.Proc, key string) any {
	db.depth.Acquire(p)
	p.Sleep(db.penalty)
	db.depth.Release()
	db.Accesses++
	db.TimeSpent += db.penalty
	return "db:" + key
}

// Store writes a value through to the backend (write-behind caching setups;
// charged like a fetch).
func (db *DB) Store(p *sim.Proc, key string, value any) {
	db.depth.Acquire(p)
	p.Sleep(db.penalty)
	db.depth.Release()
	db.Accesses++
	db.TimeSpent += db.penalty
}
