// Package slab implements Memcached's slab memory allocator: memory is
// reserved in fixed-size pages (1 MB by default) which are divided into
// equal chunks belonging to a slab class; an item is stored in the smallest
// class whose chunk fits it. The allocator prevents fragmentation from
// churning mixed-size items and gives the hybrid design its eviction
// granularity — on memory pressure, roughly one page worth of LRU items
// from a class is flushed to the SSD at once.
package slab

import (
	"fmt"
	"math"
)

// DefaultPageSize is Memcached's slab page size.
const DefaultPageSize = 1 << 20

// Config sets the class geometry and memory budget.
type Config struct {
	// PageSize is the slab page size in bytes (default 1 MB).
	PageSize int
	// MinChunk is the chunk size of class 0 (default 96, as Memcached).
	MinChunk int
	// GrowthFactor is the chunk-size ratio between consecutive classes
	// (default 1.25, as Memcached).
	GrowthFactor float64
	// MemLimit is the total slab memory budget in bytes (the -m flag).
	MemLimit int64
}

func (c *Config) fill() {
	if c.PageSize <= 0 {
		c.PageSize = DefaultPageSize
	}
	if c.MinChunk <= 0 {
		c.MinChunk = 96
	}
	if c.GrowthFactor <= 1 {
		c.GrowthFactor = 1.25
	}
	if c.MemLimit <= 0 {
		c.MemLimit = 64 << 20
	}
}

// Class is one slab class's accounting.
type Class struct {
	Index      int
	ChunkSize  int
	ChunksPage int // chunks per page
	Pages      int
	UsedChunks int
	FreeChunks int
}

// Allocator is the slab allocator state for one server.
type Allocator struct {
	cfg     Config
	classes []Class
	memUsed int64
}

// New builds an allocator with classes spanning MinChunk up to PageSize.
func New(cfg Config) *Allocator {
	cfg.fill()
	a := &Allocator{cfg: cfg}
	size := cfg.MinChunk
	for idx := 0; ; idx++ {
		if size > cfg.PageSize {
			break
		}
		a.classes = append(a.classes, Class{
			Index:      idx,
			ChunkSize:  size,
			ChunksPage: cfg.PageSize / size,
		})
		next := int(math.Ceil(float64(size) * cfg.GrowthFactor))
		// Memcached aligns chunk sizes to 8 bytes.
		next = (next + 7) &^ 7
		if next == size {
			next += 8
		}
		size = next
	}
	// Ensure a top class of exactly one chunk per page.
	last := &a.classes[len(a.classes)-1]
	if last.ChunkSize != cfg.PageSize {
		a.classes = append(a.classes, Class{
			Index:      len(a.classes),
			ChunkSize:  cfg.PageSize,
			ChunksPage: 1,
		})
	}
	return a
}

// Config returns the allocator's effective configuration.
func (a *Allocator) Config() Config { return a.cfg }

// NumClasses returns the number of slab classes.
func (a *Allocator) NumClasses() int { return len(a.classes) }

// Class returns a snapshot of class idx.
func (a *Allocator) Class(idx int) Class { return a.classes[idx] }

// MemUsed returns bytes of slab memory currently reserved in pages.
func (a *Allocator) MemUsed() int64 { return a.memUsed }

// MemLimit returns the configured budget.
func (a *Allocator) MemLimit() int64 { return a.cfg.MemLimit }

// ClassFor returns the smallest class whose chunks fit an item of the given
// total size (key + value + overhead). ok is false for oversized items.
func (a *Allocator) ClassFor(size int) (idx int, ok bool) {
	if size <= 0 {
		return 0, true
	}
	lo, hi := 0, len(a.classes)-1
	if size > a.classes[hi].ChunkSize {
		return 0, false
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if a.classes[mid].ChunkSize >= size {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// ChunkSize returns the chunk size of class idx.
func (a *Allocator) ChunkSize(idx int) int { return a.classes[idx].ChunkSize }

// AllocResult describes the outcome of an Alloc attempt.
type AllocResult int

const (
	// AllocOK means a chunk was reserved from existing free chunks.
	AllocOK AllocResult = iota
	// AllocNewPage means a chunk was reserved after growing the class by
	// one page (the caller may want to charge page-initialization cost).
	AllocNewPage
	// AllocNeedEvict means no free chunk exists and the memory limit
	// forbids a new page: the caller must evict before retrying.
	AllocNeedEvict
)

// Alloc reserves one chunk in class idx.
func (a *Allocator) Alloc(idx int) AllocResult {
	c := &a.classes[idx]
	if c.FreeChunks > 0 {
		c.FreeChunks--
		c.UsedChunks++
		return AllocOK
	}
	if a.memUsed+int64(a.cfg.PageSize) > a.cfg.MemLimit {
		return AllocNeedEvict
	}
	a.memUsed += int64(a.cfg.PageSize)
	c.Pages++
	c.FreeChunks += c.ChunksPage - 1
	c.UsedChunks++
	return AllocNewPage
}

// Free releases one chunk back to class idx.
func (a *Allocator) Free(idx int) {
	c := &a.classes[idx]
	if c.UsedChunks <= 0 {
		panic(fmt.Sprintf("slab: Free on class %d with no used chunks", idx))
	}
	c.UsedChunks--
	c.FreeChunks++
}

// ReclaimEmptyPage returns one page worth of entirely-free chunks from some
// class back to the global budget (slab reassignment), reporting success.
// Residency is tracked per class rather than per page, so a class qualifies
// once it holds at least a page worth of free chunks.
func (a *Allocator) ReclaimEmptyPage() bool {
	for i := range a.classes {
		c := &a.classes[i]
		if c.Pages > 0 && c.FreeChunks >= c.ChunksPage {
			c.FreeChunks -= c.ChunksPage
			c.Pages--
			a.memUsed -= int64(a.cfg.PageSize)
			return true
		}
	}
	return false
}

// TotalChunks returns used+free chunks of class idx.
func (a *Allocator) TotalChunks(idx int) int {
	c := a.classes[idx]
	return c.UsedChunks + c.FreeChunks
}

// Utilization returns the fraction of reserved slab memory holding live
// chunks, weighted by chunk size.
func (a *Allocator) Utilization() float64 {
	if a.memUsed == 0 {
		return 0
	}
	var live int64
	for _, c := range a.classes {
		live += int64(c.UsedChunks) * int64(c.ChunkSize)
	}
	return float64(live) / float64(a.memUsed)
}
