package slab

// LRU is an intrusive doubly-linked recency list. Memcached keeps one per
// slab class; the head is the most recently used entry and the tail is the
// eviction candidate. The zero value is an empty list.
type LRU[T any] struct {
	head, tail *LRUEntry[T]
	n          int
}

// LRUEntry is one node; embed or hold one per item.
type LRUEntry[T any] struct {
	Value      T
	prev, next *LRUEntry[T]
	list       *LRU[T]
}

// Len returns the number of entries.
func (l *LRU[T]) Len() int { return l.n }

// PushFront inserts e at the head (most recently used).
func (l *LRU[T]) PushFront(e *LRUEntry[T]) {
	if e.list != nil {
		panic("slab: LRU entry already on a list")
	}
	e.list = l
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.n++
}

// Remove unlinks e from its list.
func (l *LRU[T]) Remove(e *LRUEntry[T]) {
	if e.list != l {
		panic("slab: LRU entry not on this list")
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next, e.list = nil, nil, nil
	l.n--
}

// Touch moves e to the head (cache-update stage of a hit).
func (l *LRU[T]) Touch(e *LRUEntry[T]) {
	if e.list != l {
		panic("slab: LRU entry not on this list")
	}
	if l.head == e {
		return
	}
	l.Remove(e)
	l.PushFront(e)
}

// Back returns the least recently used entry, or nil.
func (l *LRU[T]) Back() *LRUEntry[T] { return l.tail }

// Front returns the most recently used entry, or nil.
func (l *LRU[T]) Front() *LRUEntry[T] { return l.head }

// Prev returns the entry closer to the front, or nil.
func (e *LRUEntry[T]) Prev() *LRUEntry[T] { return e.prev }

// Next returns the entry closer to the back, or nil.
func (e *LRUEntry[T]) Next() *LRUEntry[T] { return e.next }

// PopBack removes and returns the LRU entry, or nil when empty.
func (l *LRU[T]) PopBack() *LRUEntry[T] {
	e := l.tail
	if e != nil {
		l.Remove(e)
	}
	return e
}
