package slab

import (
	"testing"
	"testing/quick"
)

func TestClassGeometry(t *testing.T) {
	a := New(Config{MemLimit: 8 << 20})
	if a.NumClasses() < 10 {
		t.Fatalf("only %d classes", a.NumClasses())
	}
	if a.Class(0).ChunkSize != 96 {
		t.Errorf("class 0 chunk %d, want 96", a.Class(0).ChunkSize)
	}
	last := a.Class(a.NumClasses() - 1)
	if last.ChunkSize != DefaultPageSize || last.ChunksPage != 1 {
		t.Errorf("top class %+v, want one 1MB chunk per page", last)
	}
	prev := 0
	for i := 0; i < a.NumClasses(); i++ {
		c := a.Class(i)
		if c.ChunkSize <= prev {
			t.Fatalf("class sizes not strictly increasing at %d: %d after %d", i, c.ChunkSize, prev)
		}
		if c.ChunksPage != a.Config().PageSize/c.ChunkSize {
			t.Errorf("class %d chunksPage %d inconsistent", i, c.ChunksPage)
		}
		prev = c.ChunkSize
	}
}

func TestClassForBoundaries(t *testing.T) {
	a := New(Config{MemLimit: 8 << 20})
	for _, size := range []int{1, 95, 96, 97, 1000, 32 * 1024, DefaultPageSize} {
		idx, ok := a.ClassFor(size)
		if !ok {
			t.Fatalf("size %d rejected", size)
		}
		if got := a.ChunkSize(idx); got < size {
			t.Errorf("size %d assigned class with chunk %d", size, got)
		}
		if idx > 0 && a.ChunkSize(idx-1) >= size {
			t.Errorf("size %d not in smallest fitting class", size)
		}
	}
	if _, ok := a.ClassFor(DefaultPageSize + 1); ok {
		t.Errorf("oversize item accepted")
	}
}

func TestAllocGrowsPagesUntilLimit(t *testing.T) {
	a := New(Config{MemLimit: 2 << 20, MinChunk: 1024, GrowthFactor: 2})
	idx, _ := a.ClassFor(1024)
	perPage := a.Class(idx).ChunksPage
	// First alloc grows a page.
	if r := a.Alloc(idx); r != AllocNewPage {
		t.Fatalf("first alloc = %v, want AllocNewPage", r)
	}
	for i := 1; i < perPage; i++ {
		if r := a.Alloc(idx); r != AllocOK {
			t.Fatalf("alloc %d = %v, want AllocOK", i, r)
		}
	}
	if r := a.Alloc(idx); r != AllocNewPage {
		t.Fatalf("page-2 alloc = %v, want AllocNewPage", r)
	}
	for i := 1; i < perPage; i++ {
		a.Alloc(idx)
	}
	// Memory limit (2 pages) reached.
	if r := a.Alloc(idx); r != AllocNeedEvict {
		t.Fatalf("over-limit alloc = %v, want AllocNeedEvict", r)
	}
	if a.MemUsed() != 2<<20 {
		t.Errorf("MemUsed %d, want 2MB", a.MemUsed())
	}
}

func TestFreeEnablesReuseWithoutNewPage(t *testing.T) {
	a := New(Config{MemLimit: 1 << 20, MinChunk: 64 * 1024, GrowthFactor: 2})
	idx, _ := a.ClassFor(64 * 1024)
	per := a.Class(idx).ChunksPage
	for i := 0; i < per; i++ {
		a.Alloc(idx)
	}
	if a.Alloc(idx) != AllocNeedEvict {
		t.Fatalf("expected NeedEvict at limit")
	}
	a.Free(idx)
	if r := a.Alloc(idx); r != AllocOK {
		t.Errorf("alloc after free = %v, want AllocOK", r)
	}
}

func TestFreeWithoutAllocPanics(t *testing.T) {
	a := New(Config{})
	defer func() {
		if recover() == nil {
			t.Errorf("unbalanced Free did not panic")
		}
	}()
	a.Free(0)
}

func TestUtilization(t *testing.T) {
	a := New(Config{MemLimit: 4 << 20, MinChunk: 512 * 1024, GrowthFactor: 2})
	if a.Utilization() != 0 {
		t.Errorf("fresh allocator utilization %v", a.Utilization())
	}
	idx, _ := a.ClassFor(512 * 1024)
	a.Alloc(idx) // one page reserved, one of two chunks used
	if u := a.Utilization(); u < 0.4 || u > 0.6 {
		t.Errorf("utilization %v, want ≈0.5", u)
	}
}

// Property: ClassFor always returns the smallest class that fits.
func TestClassForSmallestFitProperty(t *testing.T) {
	a := New(Config{MemLimit: 8 << 20})
	f := func(raw uint32) bool {
		size := int(raw%uint32(DefaultPageSize)) + 1
		idx, ok := a.ClassFor(size)
		if !ok {
			return false
		}
		if a.ChunkSize(idx) < size {
			return false
		}
		return idx == 0 || a.ChunkSize(idx-1) < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: alloc/free sequences never corrupt chunk accounting.
func TestAllocFreeAccountingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		a := New(Config{MemLimit: 4 << 20, MinChunk: 4096, GrowthFactor: 2})
		idx, _ := a.ClassFor(4096)
		live := 0
		for _, alloc := range ops {
			if alloc {
				if r := a.Alloc(idx); r != AllocNeedEvict {
					live++
				}
			} else if live > 0 {
				a.Free(idx)
				live--
			}
		}
		c := a.Class(idx)
		return c.UsedChunks == live &&
			c.UsedChunks+c.FreeChunks == c.Pages*c.ChunksPage &&
			a.MemUsed() == int64(c.Pages)*int64(a.Config().PageSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLRUBasics(t *testing.T) {
	var l LRU[string]
	a := &LRUEntry[string]{Value: "a"}
	b := &LRUEntry[string]{Value: "b"}
	c := &LRUEntry[string]{Value: "c"}
	l.PushFront(a)
	l.PushFront(b)
	l.PushFront(c) // order: c b a
	if l.Len() != 3 || l.Front() != c || l.Back() != a {
		t.Fatalf("front=%v back=%v len=%d", l.Front().Value, l.Back().Value, l.Len())
	}
	l.Touch(a) // order: a c b
	if l.Front() != a || l.Back() != b {
		t.Errorf("after touch front=%v back=%v", l.Front().Value, l.Back().Value)
	}
	if got := l.PopBack(); got != b {
		t.Errorf("PopBack %v, want b", got.Value)
	}
	l.Remove(c)
	if l.Len() != 1 || l.Front() != a || l.Back() != a {
		t.Errorf("after removals len=%d", l.Len())
	}
	l.Remove(a)
	if l.PopBack() != nil || l.Len() != 0 {
		t.Errorf("empty list misbehaves")
	}
}

func TestLRUDoubleInsertPanics(t *testing.T) {
	var l LRU[int]
	e := &LRUEntry[int]{Value: 1}
	l.PushFront(e)
	defer func() {
		if recover() == nil {
			t.Errorf("double PushFront did not panic")
		}
	}()
	l.PushFront(e)
}

func TestLRURemoveForeignPanics(t *testing.T) {
	var l1, l2 LRU[int]
	e := &LRUEntry[int]{Value: 1}
	l1.PushFront(e)
	defer func() {
		if recover() == nil {
			t.Errorf("Remove from wrong list did not panic")
		}
	}()
	l2.Remove(e)
}

// Property: LRU Touch/Remove/PushFront maintain a consistent order with a
// reference slice implementation.
func TestLRUMatchesReferenceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var l LRU[int]
		entries := map[int]*LRUEntry[int]{}
		var ref []int // front..back
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push new
				e := &LRUEntry[int]{Value: next}
				entries[next] = e
				l.PushFront(e)
				ref = append([]int{next}, ref...)
				next++
			case 1: // touch random existing
				if len(ref) == 0 {
					continue
				}
				v := ref[int(op)%len(ref)]
				l.Touch(entries[v])
				out := []int{v}
				for _, x := range ref {
					if x != v {
						out = append(out, x)
					}
				}
				ref = out
			case 2: // pop back
				if len(ref) == 0 {
					if l.PopBack() != nil {
						return false
					}
					continue
				}
				e := l.PopBack()
				if e.Value != ref[len(ref)-1] {
					return false
				}
				ref = ref[:len(ref)-1]
			}
		}
		if l.Len() != len(ref) {
			return false
		}
		cur := l.Front()
		for _, want := range ref {
			if cur == nil || cur.Value != want {
				return false
			}
			cur = cur.next
		}
		return cur == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
