package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"hybridkv/internal/sim"
)

func mk(n int) *Recorder {
	r := New(0)
	for i := 0; i < n; i++ {
		r.Add(Op{
			Client: i % 4, Kind: "get", Key: "k",
			Issued:    sim.Time(i) * sim.Microsecond,
			Completed: sim.Time(i)*sim.Microsecond + 10*sim.Microsecond,
			Status:    "OK", Bytes: 1024,
		})
	}
	return r
}

func TestSequenceAndLatency(t *testing.T) {
	r := mk(5)
	ops := r.Ops()
	for i, op := range ops {
		if op.Seq != int64(i) {
			t.Errorf("seq %d, want %d", op.Seq, i)
		}
		if op.Latency() != 10*sim.Microsecond {
			t.Errorf("latency %v", op.Latency())
		}
	}
}

func TestBoundedRecorderDrops(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Add(Op{})
	}
	if r.Len() != 3 || r.Dropped() != 7 {
		t.Errorf("len=%d dropped=%d, want 3/7", r.Len(), r.Dropped())
	}
}

func TestCSVExport(t *testing.T) {
	r := mk(3)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d CSV lines, want header+3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seq,client,kind,key,issued_ns") {
		t.Errorf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "10000") { // 10µs latency in ns
		t.Errorf("row %q missing latency", lines[1])
	}
}

func TestJSONLExport(t *testing.T) {
	r := mk(2)
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines", len(lines))
	}
	var op Op
	if err := json.Unmarshal([]byte(lines[1]), &op); err != nil {
		t.Fatal(err)
	}
	if op.Seq != 1 || op.Status != "OK" || op.Bytes != 1024 {
		t.Errorf("decoded %+v", op)
	}
}

func TestTimeline(t *testing.T) {
	r := New(0)
	// 4 completions in the first millisecond, 2 in the third.
	for _, at := range []sim.Time{100, 200, 300, 400, 2100, 2900} {
		r.Add(Op{Completed: at * sim.Microsecond})
	}
	tl := r.Timeline(sim.Millisecond)
	if len(tl) != 3 {
		t.Fatalf("timeline has %d buckets, want 3", len(tl))
	}
	if tl[0] != 4000 || tl[1] != 0 || tl[2] != 2000 {
		t.Errorf("timeline %v, want [4000 0 2000] ops/s", tl)
	}
}

func TestTimelineEmpty(t *testing.T) {
	if tl := New(0).Timeline(sim.Millisecond); tl != nil {
		t.Errorf("empty timeline %v", tl)
	}
}

func TestSummary(t *testing.T) {
	if !strings.Contains(New(0).Summary(), "empty") {
		t.Errorf("empty summary")
	}
	s := mk(4).Summary()
	if !strings.Contains(s, "4 ops") || !strings.Contains(s, "mean=10µs") {
		t.Errorf("summary %q", s)
	}
}
