// Package trace records per-operation events during a simulation run and
// exports them for offline analysis (CSV or JSON lines): per-op latency
// scatter, windowed throughput timelines, warmup visualization — the raw
// material behind the figures rather than the aggregates.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"hybridkv/internal/sim"
)

// Op is one recorded operation.
type Op struct {
	// Seq is the record's index in arrival order.
	Seq int64 `json:"seq"`
	// Client identifies the issuing client.
	Client int `json:"client"`
	// Kind is the operation kind ("set", "get", ...).
	Kind string `json:"kind"`
	// Key is the operation's key (may be truncated by the recorder).
	Key string `json:"key"`
	// Issued and Completed are virtual timestamps.
	Issued    sim.Time `json:"issued_ns"`
	Completed sim.Time `json:"completed_ns"`
	// Status is the textual outcome ("STORED", "OK", "NOT_FOUND", ...).
	Status string `json:"status"`
	// Bytes is the value size moved.
	Bytes int `json:"bytes"`
}

// Latency returns the op's completion latency.
func (o Op) Latency() sim.Time { return o.Completed - o.Issued }

// Recorder accumulates operation records up to a bound.
type Recorder struct {
	ops     []Op
	limit   int
	dropped int64
	seq     int64
}

// New creates a recorder holding at most limit records (0 = 1<<20).
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Add appends one record, assigning its sequence number. Records beyond the
// bound are counted as dropped rather than grown without limit.
func (r *Recorder) Add(op Op) {
	op.Seq = r.seq
	r.seq++
	if len(r.ops) >= r.limit {
		r.dropped++
		return
	}
	r.ops = append(r.ops, op)
}

// Len returns the number of retained records.
func (r *Recorder) Len() int { return len(r.ops) }

// Dropped returns how many records exceeded the bound.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Ops returns the retained records in arrival order.
func (r *Recorder) Ops() []Op { return r.ops }

// WriteCSV emits the records as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "client", "kind", "key", "issued_ns", "completed_ns", "latency_ns", "status", "bytes"}); err != nil {
		return err
	}
	for _, op := range r.ops {
		rec := []string{
			strconv.FormatInt(op.Seq, 10),
			strconv.Itoa(op.Client),
			op.Kind,
			op.Key,
			strconv.FormatInt(int64(op.Issued), 10),
			strconv.FormatInt(int64(op.Completed), 10),
			strconv.FormatInt(int64(op.Latency()), 10),
			op.Status,
			strconv.Itoa(op.Bytes),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSONL emits the records as JSON lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, op := range r.ops {
		if err := enc.Encode(op); err != nil {
			return err
		}
	}
	return nil
}

// Timeline buckets completions into windows of the given width and returns
// ops/second per window, from time zero through the last completion.
func (r *Recorder) Timeline(window sim.Time) []float64 {
	if window <= 0 || len(r.ops) == 0 {
		return nil
	}
	var last sim.Time
	for _, op := range r.ops {
		if op.Completed > last {
			last = op.Completed
		}
	}
	n := int(last/window) + 1
	counts := make([]float64, n)
	for _, op := range r.ops {
		counts[int(op.Completed/window)]++
	}
	perSec := float64(sim.Second) / float64(window)
	for i := range counts {
		counts[i] *= perSec
	}
	return counts
}

// Summary renders a one-line digest.
func (r *Recorder) Summary() string {
	if len(r.ops) == 0 {
		return "trace: empty"
	}
	var total sim.Time
	var max sim.Time
	for _, op := range r.ops {
		l := op.Latency()
		total += l
		if l > max {
			max = l
		}
	}
	return fmt.Sprintf("trace: %d ops (%d dropped), mean=%v max=%v",
		len(r.ops), r.dropped, total/sim.Time(len(r.ops)), max)
}
