package blockdev

import (
	"testing"

	"hybridkv/internal/sim"
)

// timedRead measures one 32 KiB read at the head of a fresh run on a SATA
// device carrying the given slow windows.
func timedRead(windows []SlowWindow) sim.Time {
	env := sim.NewEnv()
	d := New(env, SATA(), 1<<30)
	for _, w := range windows {
		d.AddSlow(w.From, w.To, w.Mult, w.Floor)
	}
	d.Poke(0, 32*1024, "v")
	env.Spawn("io", func(p *sim.Proc) { d.ReadAt(p, 0, 32*1024) })
	return env.Run()
}

func TestFailSlowWindowStretchesServiceTime(t *testing.T) {
	base := SATA().ReadTime(32 * 1024)
	win := SlowWindow{From: 0, To: sim.Second, Mult: 8}
	if got, want := timedRead([]SlowWindow{win}), sim.Time(float64(base)*8); got != want {
		t.Errorf("8× window: read took %v, want %v (base %v)", got, want, base)
	}
	// A floor above the multiplied time wins: degraded drives whose
	// per-command cost collapses to a fixed stall.
	win.Floor = 10 * sim.Millisecond
	if got := timedRead([]SlowWindow{win}); got != 10*sim.Millisecond {
		t.Errorf("floored window: read took %v, want the 10ms floor", got)
	}
	// Mult ≤ 1 is treated as no multiplier; only the floor acts.
	if got := timedRead([]SlowWindow{{From: 0, To: sim.Second, Mult: 0.5, Floor: 5 * sim.Millisecond}}); got != 5*sim.Millisecond {
		t.Errorf("floor-only window: read took %v, want 5ms", got)
	}
}

func TestFailSlowWindowBoundsAndCounting(t *testing.T) {
	base := SATA().ReadTime(32 * 1024)
	// A window that closed before the command leaves timing untouched.
	if got := timedRead([]SlowWindow{{From: 0, To: 0, Mult: 100}}); got != base {
		t.Errorf("expired window: read took %v, want unfaulted %v", got, base)
	}

	env := sim.NewEnv()
	d := New(env, SATA(), 1<<30)
	d.AddSlow(0, base+1, 4, 0)
	d.Poke(0, 32*1024, "v")
	d.Poke(1<<20, 32*1024, "w")
	env.Spawn("io", func(p *sim.Proc) {
		d.ReadAt(p, 0, 32*1024)     // starts inside the window
		d.ReadAt(p, 1<<20, 32*1024) // starts after it closes
	})
	end := env.Run()
	if want := sim.Time(float64(base)*4) + base; end != want {
		t.Errorf("elapsed %v, want one slowed + one clean read = %v", end, want)
	}
	if d.SlowedIOs != 1 {
		t.Errorf("SlowedIOs = %d, want 1", d.SlowedIOs)
	}
	if !d.Slowed(0) || d.Slowed(base+1) {
		t.Error("Slowed(at) does not match the [From, To) schedule")
	}
}

// TestFailSlowOverlapTakesWorstAndReplays: overlapping windows yield the
// single worst service time, and — with no RNG anywhere in the path — two
// identically-scheduled runs land on the same virtual-time trace.
func TestFailSlowOverlapTakesWorstAndReplays(t *testing.T) {
	base := SATA().ReadTime(32 * 1024)
	wins := []SlowWindow{
		{From: 0, To: sim.Second, Mult: 2},
		{From: 0, To: sim.Second, Mult: 6},
	}
	if got, want := timedRead(wins), sim.Time(float64(base)*6); got != want {
		t.Errorf("overlap: read took %v, want the worst window's %v (not the sum)", got, want)
	}
	if a, b := timedRead(wins), timedRead(wins); a != b {
		t.Errorf("identically-scheduled runs diverged: %v vs %v", a, b)
	}
}
