package blockdev

import (
	"testing"

	"hybridkv/internal/sim"
)

func TestInjectTornDisabledPersistsEverything(t *testing.T) {
	d := New(sim.NewEnv(), SATA(), 1<<20)
	// Not armed: every command persists in full.
	if n, torn := d.InjectTorn(64 << 10); n != 64<<10 || torn {
		t.Errorf("unarmed InjectTorn = (%d,%v), want (%d,false)", n, torn, 64<<10)
	}
	// Armed with prob 0: same.
	d.SetTornWrites(1, 0)
	if n, torn := d.InjectTorn(64 << 10); n != 64<<10 || torn {
		t.Errorf("prob-0 InjectTorn = (%d,%v), want full", n, torn)
	}
	if d.TornWrites != 0 {
		t.Errorf("TornWrites = %d, want 0", d.TornWrites)
	}
}

func TestInjectTornAlwaysTearsSectorPrefix(t *testing.T) {
	d := New(sim.NewEnv(), SATA(), 1<<20)
	d.SetTornWrites(42, 1.0)
	const size = 8 * SectorSize
	for i := 0; i < 50; i++ {
		n, torn := d.InjectTorn(size)
		if !torn {
			t.Fatalf("draw %d: prob-1 command did not tear", i)
		}
		if n%SectorSize != 0 {
			t.Fatalf("draw %d: persisted %d not sector-aligned", i, n)
		}
		if n < 0 || n >= size {
			t.Fatalf("draw %d: persisted %d outside [0,%d)", i, n, size)
		}
	}
	if d.TornWrites != 50 {
		t.Errorf("TornWrites = %d, want 50", d.TornWrites)
	}
}

func TestInjectTornNeverTearsSingleSector(t *testing.T) {
	d := New(sim.NewEnv(), SATA(), 1<<20)
	d.SetTornWrites(7, 1.0)
	// A command of at most one sector is atomic on real media.
	if n, torn := d.InjectTorn(SectorSize); n != SectorSize || torn {
		t.Errorf("single-sector InjectTorn = (%d,%v), want atomic", n, torn)
	}
}

func TestDurableExtentLifecycle(t *testing.T) {
	d := New(sim.NewEnv(), SATA(), 1<<20)
	d.Persist(0, 4096, 4096, "a")
	d.Persist(8192, 4096, 512, "b") // torn: only one sector valid
	d.Persist(4096, 4096, 4096, "c")

	if got := d.DurableOffsets(0, 1<<20); len(got) != 3 ||
		got[0] != 0 || got[1] != 4096 || got[2] != 8192 {
		t.Fatalf("DurableOffsets = %v", got)
	}
	if end := d.DurableEnd(0, 1<<20); end != 8192+4096 {
		t.Errorf("DurableEnd = %d, want %d", end, 8192+4096)
	}
	e, ok := d.PeekDurable(8192)
	if !ok || !e.Torn() || e.Payload != "b" || e.Valid != 512 {
		t.Errorf("torn extent = %+v ok=%v", e, ok)
	}
	e, ok = d.PeekDurable(0)
	if !ok || e.Torn() {
		t.Errorf("full extent reported torn: %+v ok=%v", e, ok)
	}

	d.DiscardDurable(4096)
	if _, ok := d.PeekDurable(4096); ok {
		t.Error("extent survived DiscardDurable")
	}
	// Persist with valid <= 0 deletes.
	d.Persist(0, 4096, 0, nil)
	if _, ok := d.PeekDurable(0); ok {
		t.Error("extent survived zero-valid Persist")
	}
	if end := d.DurableEnd(0, 1<<20); end != 8192+4096 {
		t.Errorf("DurableEnd after discards = %d", end)
	}
}
