package blockdev

import (
	"testing"

	"hybridkv/internal/sim"
)

// rotDev builds a device with n durable+logical extents of size sz at
// offsets 0, sz, 2sz, … written at virtual time 0.
func rotDev(env *sim.Env, n, sz int) *Device {
	d := New(env, SATA(), 1<<30)
	env.Spawn("seed", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			off := int64(i * sz)
			d.WriteAt(p, off, sz, i)
			d.Persist(off, sz, sz, i)
		}
	})
	env.Run()
	return d
}

// Bit-rot is a pure hash of (seed, offset): the same seed selects the same
// extents at the same instants on every device, a different seed selects a
// different set, and arming rot draws nothing from the fault RNG stream.
func TestBitRotDeterministicPerSeed(t *testing.T) {
	rotten := func(seed int64) []bool {
		env := sim.NewEnv()
		d := rotDev(env, 200, 4096)
		d.AddBitRot(seed, 0, sim.Millisecond, 0.3)
		out := make([]bool, 200)
		for i := range out {
			out[i] = d.Rotten(int64(i*4096), sim.Millisecond)
		}
		return out
	}
	a, b := rotten(11), rotten(11)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("extent %d: same-seed rot verdicts differ", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == 200 {
		t.Fatalf("rate-0.3 rot hit %d of 200 extents", hits)
	}
	c := rotten(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different rot seeds corrupted identical extent sets")
	}
}

// Rot is latent until read, and a rewrite refreshes the cells: an extent
// re-persisted after its rot instant reads clean again, exactly how real
// latent sector errors behave under fresh programs.
func TestBitRotRewriteRefreshesCells(t *testing.T) {
	env := sim.NewEnv()
	d := rotDev(env, 50, 4096)
	d.AddBitRot(3, 0, sim.Millisecond, 1.0) // every extent rots inside [0, 1ms)
	victim := int64(-1)
	for i := 0; i < 50; i++ {
		if d.Rotten(int64(i*4096), sim.Millisecond) {
			victim = int64(i * 4096)
			break
		}
	}
	if victim < 0 {
		t.Fatal("rate-1.0 window rotted nothing")
	}
	// Before its rot instant the extent reads clean (find a pre-window time).
	if d.Rotten(victim, -1) {
		t.Error("extent rotten before the window opened")
	}
	// Rewrite after the whole window: WrittenAt now exceeds every candidate
	// rot instant, so the extent is clean again at any later read.
	env.Spawn("rewrite", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		d.WriteAt(p, victim, 4096, "fresh")
		d.Persist(victim, 4096, 4096, "fresh")
	})
	env.Run()
	if d.Rotten(victim, env.Now()+sim.Second) {
		t.Error("rewritten extent still reads rotten")
	}
}

// A rotted read, a clean read, and an injected uncorrectable read error all
// charge the identical service time — the satellite-2 contract that keeps
// defense cells virtual-time-comparable to nodefense cells.
func TestRottedReadChargesNormalServiceTime(t *testing.T) {
	read := func(arm func(d *Device)) (elapsed sim.Time, payload any, ok bool) {
		env := sim.NewEnv()
		d := rotDev(env, 1, 4096)
		arm(d)
		env.Spawn("read", func(p *sim.Proc) {
			p.Sleep(sim.Millisecond) // read after any rot window closed
			t0 := p.Now()
			payload, ok = d.ReadAt(p, 0, 4096)
			elapsed = p.Now() - t0
		})
		env.Run()
		return elapsed, payload, ok
	}
	cleanT, cleanV, cleanOK := read(func(d *Device) {
	})
	// Window opens strictly after the seed write persisted, so rate 1.0
	// guarantees the extent's rot instant precedes the read.
	rotT, rotV, rotOK := read(func(d *Device) {
		d.AddBitRot(3, 200*sim.Microsecond, 300*sim.Microsecond, 1.0)
	})
	errT, _, errOK := read(func(d *Device) { d.SetFaults(1, 1.0, 0) })
	if !cleanOK || cleanV != 0 {
		t.Fatalf("clean read returned (%v, %v)", cleanV, cleanOK)
	}
	if !rotOK {
		t.Fatal("rotted read reported missing contents (that is the error path, not rot)")
	}
	if r, isRot := rotV.(Rotted); !isRot || r.Payload != 0 {
		t.Fatalf("rotted read returned %v, want Rotted wrapping the original payload", rotV)
	}
	if errOK {
		t.Fatal("injected read error returned contents")
	}
	if rotT != cleanT || errT != cleanT {
		t.Errorf("service times diverge: clean %v, rotted %v, read-error %v", cleanT, rotT, errT)
	}
}

// Arming bit-rot consumes no RNG draws: a device with rot armed produces the
// same injected-read-error sequence as its rot-free twin.
func TestBitRotDoesNotPerturbFaultRNG(t *testing.T) {
	errs := func(rot bool) int64 {
		env := sim.NewEnv()
		d := rotDev(env, 100, 4096)
		d.SetFaults(21, 0.5, 0)
		if rot {
			d.AddBitRot(8, 0, sim.Millisecond, 0.5)
		}
		env.Spawn("reads", func(p *sim.Proc) {
			p.Sleep(2 * sim.Millisecond)
			for i := 0; i < 100; i++ {
				d.ReadAt(p, int64(i*4096), 4096)
			}
		})
		env.Run()
		return d.ReadErrors
	}
	without, with := errs(false), errs(true)
	if without != with {
		t.Errorf("ReadErrors diverged: %d without rot, %d with", without, with)
	}
}

// RottenReads counts only reads that actually served rotted contents, and
// Rotten (the ground-truth oracle) counts nothing.
func TestRotReadCountsBites(t *testing.T) {
	env := sim.NewEnv()
	d := rotDev(env, 100, 4096)
	d.AddBitRot(8, 0, sim.Millisecond, 0.5)
	rotted := 0
	for i := 0; i < 100; i++ {
		if d.Rotten(int64(i*4096), sim.Second) {
			rotted++
		}
	}
	if d.RottenReads != 0 {
		t.Fatalf("oracle Rotten bumped RottenReads to %d", d.RottenReads)
	}
	env.Spawn("reads", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		for i := 0; i < 100; i++ {
			d.ReadAt(p, int64(i*4096), 4096)
		}
	})
	env.Run()
	if d.RottenReads != int64(rotted) {
		t.Errorf("RottenReads = %d, oracle says %d extents were rotten", d.RottenReads, rotted)
	}
}
