// Package blockdev models flash block devices (SATA and NVMe SSDs) under
// the sim kernel.
//
// A Device executes read/write commands with a first-order service-time
// model: per-command base latency plus size over sustained bandwidth,
// executed on a bounded number of internal channels (the effective queue
// depth the drive can serve in parallel). Commands queue FIFO when all
// channels are busy, which is how a busy hybrid Memcached server's SSD
// backlog forms.
//
// Contents are tracked as opaque payload references per (offset,size)
// extent — the simulation moves ownership tokens, not bytes, so a 4 GB
// simulated store costs a few MB of host memory.
package blockdev

import (
	"fmt"
	"math/rand"
	"sort"

	"hybridkv/internal/sim"
)

// Profile is the cost model of one drive type.
type Profile struct {
	Name      string
	ReadBase  sim.Time // command setup + flash read latency
	WriteBase sim.Time // command setup + program latency (drive-buffer ack)
	ReadBps   int64    // sustained read bandwidth, bytes/sec
	WriteBps  int64    // sustained write bandwidth, bytes/sec
	// Channels is the number of commands the drive services concurrently
	// (flash channel parallelism as exposed through the host interface:
	// shallow for AHCI/SATA, deep for NVMe).
	Channels int
	// SyncBarrier is the cost of a synchronous cache-flush barrier (the
	// price of synchronous direct I/O on the request path). Consumer SATA
	// drives pay a full program/flush cycle; datacenter NVMe drives with
	// power-loss-protected write buffers ack almost immediately.
	SyncBarrier sim.Time
}

// SATA models the local SATA SSD on SDSC Comet compute nodes ("Cluster A").
func SATA() Profile {
	return Profile{
		Name:      "SATA-SSD",
		ReadBase:  90 * sim.Microsecond,
		WriteBase: 70 * sim.Microsecond,
		ReadBps:   500_000_000,
		WriteBps:  430_000_000,
		Channels:  4, // NCQ-effective random-read parallelism
		// Full on-drive cache flush per synchronous direct write: consumer
		// SATA fsync latencies of 5-20 ms are routinely measured.
		SyncBarrier: 3 * sim.Millisecond,
	}
}

// NVMe models the Intel P3700 NVMe SSD on OSU NowLab nodes ("Cluster B").
func NVMe() Profile {
	return Profile{
		Name:        "NVMe-SSD",
		ReadBase:    20 * sim.Microsecond,
		WriteBase:   15 * sim.Microsecond,
		ReadBps:     2_700_000_000,
		WriteBps:    1_900_000_000,
		Channels:    8,
		SyncBarrier: 50 * sim.Microsecond,
	}
}

// ReadTime returns the single-command service time for a size-byte read.
func (pr Profile) ReadTime(size int) sim.Time {
	return pr.ReadBase + bwTime(size, pr.ReadBps)
}

// WriteTime returns the single-command service time for a size-byte write.
func (pr Profile) WriteTime(size int) sim.Time {
	return pr.WriteBase + bwTime(size, pr.WriteBps)
}

func bwTime(size int, bps int64) sim.Time {
	if size <= 0 || bps <= 0 {
		return 0
	}
	return sim.Time(float64(size) / float64(bps) * float64(sim.Second))
}

// SectorSize is the atomic write unit of the media: a torn write persists a
// whole number of leading sectors and nothing after them.
const SectorSize = 512

// Device is one simulated drive.
type Device struct {
	env      *sim.Env
	prof     Profile
	capacity int64
	channels *sim.Resource
	extents  map[int64]extent

	// durable is what the platters hold across a power cycle, fed by the
	// persistence-aware write paths (pagecache.File.WriteExtents /
	// WriteCommit). It is kept separate from extents — the running system's
	// logical view — so that torn writes can persist a sector prefix without
	// the live store observing the tear.
	durable map[int64]DurExtent

	// Fault injection (SetFaults). The RNG is only consulted while a
	// probability is non-zero, so an unfaulted device stays deterministic.
	faultRNG     *rand.Rand
	readErrProb  float64
	writeErrProb float64

	// Torn-write injection (SetTornWrites): a write command may persist only
	// a prefix of its sectors, modeling power loss mid-program.
	tornRNG  *rand.Rand
	tornProb float64

	// Fail-slow injection (AddSlow): scheduled windows during which every
	// command's service time is multiplied and floored. Purely a timing
	// transform — no RNG, no errors — so a limping drive stays limping for
	// exactly the scheduled interval on every replay.
	slowWindows []SlowWindow

	// Bit-rot injection (AddBitRot): latent at-rest corruption. Whether and
	// when a durable extent rots is a pure hash of (seed, offset), drawn
	// from no RNG stream, so arming rot perturbs nothing else and faulted
	// runs replay exactly.
	rotWindows []RotWindow

	// Stats
	Reads, Writes         int64
	BytesRead, BytesWrite int64
	BusyTime              sim.Time
	// ReadErrors / WriteErrors count injected I/O failures.
	ReadErrors, WriteErrors int64
	// TornWrites counts writes that persisted only a sector prefix.
	TornWrites int64
	// SlowedIOs counts commands stretched by a slow window.
	SlowedIOs int64
	// RottenReads counts device-touching reads that returned rotted
	// contents (the injector biting; detection is the reader's job).
	RottenReads int64
}

// SlowWindow is one fail-slow interval: commands serviced in [From, To)
// take Mult times their modeled service time, floored at Floor. This is
// the SSD-side gray failure — a drive that still completes every command,
// just slowly (media wear, thermal throttling, internal GC storms).
type SlowWindow struct {
	From, To sim.Time
	// Mult multiplies the profile's service time (1.0 = no change; values
	// below 1 are treated as 1).
	Mult float64
	// Floor is the minimum service time of an affected command, modeling
	// degraded drives whose small-command latency collapses to a fixed,
	// high per-command cost.
	Floor sim.Time
}

// RotWindow is one scheduled bit-rot interval: a rate-sized fraction of
// durable extents each silently corrupt at a per-extent instant inside
// [From, To), chosen by hashing the extent offset with Seed. Rot is latent:
// nothing happens until the extent is next read off the media, which is
// what distinguishes it from the write-time torn/error injection. An
// extent rewritten after its rot instant is clean again (fresh charge in
// the cells), matching how real latent sector errors behave.
type RotWindow struct {
	Seed     uint64
	From, To sim.Time
	Rate     float64
}

type extent struct {
	size    int
	payload any
}

// DurExtent is one durably-persisted extent. Valid < Size marks a torn
// extent: only the first Valid bytes reached the media, so any checksum
// over the full extent fails. WrittenAt is the persist instant, consulted
// by the bit-rot predicate (a rewrite refreshes the cells).
type DurExtent struct {
	Size      int
	Payload   any
	Valid     int
	WrittenAt sim.Time
}

// Rotted wraps a read payload whose media cells rotted after it was
// persisted: the bits returned are not the bits written. Integrity-checking
// readers (the hybrid slab's verify path) detect the wrapper the way a real
// reader detects a checksum mismatch; readers with verification disabled
// unwrap it and surface garbage — exactly the failure mode the bitrot
// experiment's nodefense cells measure.
type Rotted struct {
	Payload any
}

// Torn reports whether the extent persisted incompletely.
func (e DurExtent) Torn() bool { return e.Valid < e.Size }

// New creates a drive of the given profile and capacity (bytes).
func New(env *sim.Env, prof Profile, capacity int64) *Device {
	if prof.Channels <= 0 {
		prof.Channels = 1
	}
	return &Device{
		env:      env,
		prof:     prof,
		capacity: capacity,
		channels: sim.NewResource(env, prof.Channels),
		extents:  make(map[int64]extent),
		durable:  make(map[int64]DurExtent),
	}
}

// Profile returns the drive's cost model.
func (d *Device) Profile() Profile { return d.prof }

// Capacity returns the drive capacity in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// QueueDepth reports commands waiting for a channel.
func (d *Device) QueueDepth() int { return d.channels.Waiting() }

// SetFaults arms I/O error injection: each read (write) command fails
// uncorrectably with probability readErr (writeErr). Zero probabilities
// disarm injection.
func (d *Device) SetFaults(seed int64, readErr, writeErr float64) {
	d.faultRNG = rand.New(rand.NewSource(seed))
	d.readErrProb = readErr
	d.writeErrProb = writeErr
}

// InjectReadError draws one read-command fault decision. Layers that model
// device timing themselves (the page cache) consult this on their
// device-touching read paths.
func (d *Device) InjectReadError() bool {
	if d.readErrProb <= 0 || d.faultRNG == nil {
		return false
	}
	if d.faultRNG.Float64() < d.readErrProb {
		d.ReadErrors++
		return true
	}
	return false
}

// InjectWriteError draws one write-command fault decision.
func (d *Device) InjectWriteError() bool {
	if d.writeErrProb <= 0 || d.faultRNG == nil {
		return false
	}
	if d.faultRNG.Float64() < d.writeErrProb {
		d.WriteErrors++
		return true
	}
	return false
}

// AddSlow schedules a fail-slow window: commands serviced in [from, to)
// take mult× their modeled time, floored at floor. Windows may overlap;
// the worst (longest) resulting service time wins. With no windows
// installed the timing paths are untouched, keeping unfaulted runs
// bit-identical.
func (d *Device) AddSlow(from, to sim.Time, mult float64, floor sim.Time) {
	d.slowWindows = append(d.slowWindows, SlowWindow{From: from, To: to, Mult: mult, Floor: floor})
}

// Slowed reports whether any slow window covers time at — the ground truth
// a health-tracking experiment compares its detector against.
func (d *Device) Slowed(at sim.Time) bool {
	for _, w := range d.slowWindows {
		if at >= w.From && at < w.To {
			return true
		}
	}
	return false
}

// slowTime applies the active slow windows to a modeled service time.
func (d *Device) slowTime(at sim.Time, t sim.Time) sim.Time {
	if len(d.slowWindows) == 0 {
		return t
	}
	out := t
	for _, w := range d.slowWindows {
		if at < w.From || at >= w.To {
			continue
		}
		st := t
		if w.Mult > 1 {
			st = sim.Time(float64(t) * w.Mult)
		}
		if st < w.Floor {
			st = w.Floor
		}
		if st > out {
			out = st
		}
	}
	if out > t {
		d.SlowedIOs++
	}
	return out
}

// AddBitRot schedules latent at-rest corruption: a rate-sized fraction of
// durable extents (chosen by hashing their offsets with seed) each rot at a
// deterministic instant inside [from, to). The decision is a pure function
// of (seed, offset) — no RNG stream is consulted, ever — so arming bit-rot
// changes no other draw in the run and the same seed replays the exact same
// corruption. Rot is latent until read: a read that touches the device at or
// after the extent's rot instant observes Rotted contents, while extents
// rewritten after their rot instant read clean.
func (d *Device) AddBitRot(seed int64, from, to sim.Time, rate float64) {
	d.rotWindows = append(d.rotWindows, RotWindow{Seed: uint64(seed), From: from, To: to, Rate: rate})
}

// rotHash is a seeded splitmix64-style mix over an extent offset; stream
// separates the "does it rot" draw from the "when does it rot" draw.
func rotHash(seed, off, stream uint64) uint64 {
	x := seed ^ off*0x9e3779b97f4a7c15 ^ stream*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Rotten reports whether the durable extent at off reads corrupt at time
// at: some window selected it, its rot instant has passed, and it has not
// been rewritten since. This is the injector's ground truth — no counters,
// no time charge — for oracles and tests.
func (d *Device) Rotten(off int64, at sim.Time) bool {
	if len(d.rotWindows) == 0 {
		return false
	}
	e, ok := d.durable[off]
	if !ok {
		return false
	}
	for _, w := range d.rotWindows {
		h := rotHash(w.Seed, uint64(off), 1)
		if float64(h>>11)/float64(1<<53) >= w.Rate {
			continue
		}
		rotAt := w.From
		if span := w.To - w.From; span > 0 {
			rotAt += sim.Time(rotHash(w.Seed, uint64(off), 2) % uint64(span))
		}
		if at >= rotAt && e.WrittenAt <= rotAt {
			return true
		}
	}
	return false
}

// RotRead is the read-path consultation: like Rotten, but counts the bite.
// Layers that model device timing themselves (the page cache) call this on
// exactly the same device-touching reads that consult InjectReadError, and
// only after charging the normal service time — a rotted read costs the
// same as a clean one, so defense cells stay virtual-time-comparable to
// nodefense cells.
func (d *Device) RotRead(off int64, at sim.Time) bool {
	if d.Rotten(off, at) {
		d.RottenReads++
		return true
	}
	return false
}

// SetTornWrites arms torn-write injection: each persisting write command
// tears with probability prob, leaving only a uniformly-drawn sector prefix
// on the media. Zero probability disarms injection.
func (d *Device) SetTornWrites(seed int64, prob float64) {
	d.tornRNG = rand.New(rand.NewSource(seed))
	d.tornProb = prob
}

// InjectTorn draws one torn-write decision for a size-byte command: the
// number of bytes that actually persisted (a multiple of SectorSize, < size
// when torn) and whether the command tore.
func (d *Device) InjectTorn(size int) (persisted int, torn bool) {
	if d.tornProb <= 0 || d.tornRNG == nil || size <= SectorSize {
		return size, false
	}
	if d.tornRNG.Float64() >= d.tornProb {
		return size, false
	}
	sectors := (size + SectorSize - 1) / SectorSize
	// Persist [0, sectors) whole sectors — never all of them.
	persisted = d.tornRNG.Intn(sectors) * SectorSize
	d.TornWrites++
	return persisted, true
}

// Persist records a durable extent: what a cold restart will find at off.
// Valid < size marks the extent torn. Time is not charged here — callers
// charge the device through the normal write paths.
func (d *Device) Persist(off int64, size, valid int, payload any) {
	if valid <= 0 {
		delete(d.durable, off)
		return
	}
	d.durable[off] = DurExtent{Size: size, Payload: payload, Valid: valid, WrittenAt: d.env.Now()}
}

// DiscardDurable drops the durable extent at off (slot invalidation /
// region reuse).
func (d *Device) DiscardDurable(off int64) { delete(d.durable, off) }

// PeekDurable returns the durable extent at off without any time charge.
func (d *Device) PeekDurable(off int64) (DurExtent, bool) {
	e, ok := d.durable[off]
	return e, ok
}

// DurableOffsets returns every durable extent offset in [lo, hi), sorted —
// the scan order of a recovery pass.
func (d *Device) DurableOffsets(lo, hi int64) []int64 {
	var offs []int64
	for off := range d.durable {
		if off >= lo && off < hi {
			offs = append(offs, off)
		}
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	return offs
}

// DurableEnd returns the end offset of the highest durable extent in
// [lo, hi), or lo when none exist — where a rebuilt bump allocator must
// resume to avoid overwriting surviving data.
func (d *Device) DurableEnd(lo, hi int64) int64 {
	end := lo
	for off, e := range d.durable {
		if off >= lo && off < hi && off+int64(e.Size) > end {
			end = off + int64(e.Size)
		}
	}
	return end
}

// WriteAt stores payload at offset, blocking the calling process for the
// queueing plus service time.
func (d *Device) WriteAt(p *sim.Proc, off int64, size int, payload any) {
	d.check(off, size)
	d.channels.Acquire(p)
	t := d.slowTime(p.Now(), d.prof.WriteTime(size))
	p.Sleep(t)
	d.channels.Release()
	d.Writes++
	d.BytesWrite += int64(size)
	d.BusyTime += t
	if d.InjectWriteError() {
		// Failed program: the extent keeps (or lacks) its old contents.
		return
	}
	d.extents[off] = extent{size: size, payload: payload}
}

// ReadAt fetches the payload stored at offset, blocking for the queueing
// plus service time. ok is false if nothing was ever written there.
func (d *Device) ReadAt(p *sim.Proc, off int64, size int) (payload any, ok bool) {
	d.check(off, size)
	d.channels.Acquire(p)
	t := d.slowTime(p.Now(), d.prof.ReadTime(size))
	p.Sleep(t)
	d.channels.Release()
	d.Reads++
	d.BytesRead += int64(size)
	d.BusyTime += t
	if d.InjectReadError() {
		return nil, false
	}
	e, ok := d.extents[off]
	if !ok {
		return nil, false
	}
	// Service time is already charged: a rotted read costs what a clean
	// one does, it just hands back bits that no longer match the write.
	if d.RotRead(off, p.Now()) {
		return Rotted{Payload: e.payload}, true
	}
	return e.payload, true
}

// Peek returns stored contents without any time charge (for assertions and
// for page-cache hits, whose timing the cache models itself).
func (d *Device) Peek(off int64) (payload any, size int, ok bool) {
	e, ok := d.extents[off]
	return e.payload, e.size, ok
}

// Poke stores contents without any time charge (the page cache uses this
// when its writeback daemon has already charged device time).
func (d *Device) Poke(off int64, size int, payload any) {
	d.extents[off] = extent{size: size, payload: payload}
}

// Trim discards the extent at offset (no time charge; TRIM is queued and
// free at this fidelity).
func (d *Device) Trim(off int64) { delete(d.extents, off) }

// Barrier charges a synchronous flush barrier (direct/sync write path).
func (d *Device) Barrier(p *sim.Proc) {
	if d.prof.SyncBarrier <= 0 {
		return
	}
	d.channels.Acquire(p)
	t := d.slowTime(p.Now(), d.prof.SyncBarrier)
	p.Sleep(t)
	d.channels.Release()
	d.BusyTime += t
}

// ServeRaw charges the device for a command of the given kind and size
// without touching the extent map. The page cache writeback path uses it.
func (d *Device) ServeRaw(p *sim.Proc, write bool, size int) {
	d.channels.Acquire(p)
	var t sim.Time
	if write {
		t = d.prof.WriteTime(size)
		d.Writes++
		d.BytesWrite += int64(size)
	} else {
		t = d.prof.ReadTime(size)
		d.Reads++
		d.BytesRead += int64(size)
	}
	t = d.slowTime(p.Now(), t)
	p.Sleep(t)
	d.channels.Release()
	d.BusyTime += t
}

func (d *Device) check(off int64, size int) {
	if off < 0 || size < 0 || (d.capacity > 0 && off+int64(size) > d.capacity) {
		panic(fmt.Sprintf("blockdev: access [%d,%d) outside capacity %d", off, off+int64(size), d.capacity))
	}
}
