package blockdev

import (
	"testing"
	"testing/quick"

	"hybridkv/internal/sim"
)

func TestServiceTimeModel(t *testing.T) {
	prof := SATA()
	if got, want := prof.ReadTime(0), prof.ReadBase; got != want {
		t.Errorf("zero-size read time %v, want base %v", got, want)
	}
	oneMB := prof.WriteTime(1 << 20)
	if oneMB <= prof.WriteBase {
		t.Errorf("1MB write time %v not above base", oneMB)
	}
	// 1 MB at 430 MB/s ≈ 2.44 ms (+70µs base).
	if oneMB < 2*sim.Millisecond || oneMB > 3*sim.Millisecond {
		t.Errorf("SATA 1MB write time %v outside [2ms,3ms]", oneMB)
	}
}

func TestNVMeFasterThanSATA(t *testing.T) {
	for _, size := range []int{4096, 32 * 1024, 256 * 1024, 1 << 20} {
		if NVMe().ReadTime(size) >= SATA().ReadTime(size) {
			t.Errorf("size %d: NVMe read not faster than SATA", size)
		}
		if NVMe().WriteTime(size) >= SATA().WriteTime(size) {
			t.Errorf("size %d: NVMe write not faster than SATA", size)
		}
	}
}

func TestWriteThenRead(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, SATA(), 1<<30)
	var got any
	var ok bool
	env.Spawn("io", func(p *sim.Proc) {
		d.WriteAt(p, 4096, 32*1024, "item-7")
		got, ok = d.ReadAt(p, 4096, 32*1024)
	})
	end := env.Run()
	if !ok || got != "item-7" {
		t.Errorf("read back (%v,%v)", got, ok)
	}
	want := SATA().WriteTime(32*1024) + SATA().ReadTime(32*1024)
	if end != want {
		t.Errorf("elapsed %v, want %v", end, want)
	}
}

func TestReadUnwrittenReturnsNotOK(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, NVMe(), 1<<30)
	var ok bool
	env.Spawn("io", func(p *sim.Proc) { _, ok = d.ReadAt(p, 0, 4096) })
	env.Run()
	if ok {
		t.Errorf("read of unwritten extent reported ok")
	}
}

func TestChannelParallelism(t *testing.T) {
	// 8 concurrent 1MB reads on a 4-channel SATA drive must take 2 rounds.
	env := sim.NewEnv()
	d := New(env, SATA(), 1<<30)
	for i := 0; i < 4; i++ {
		off := int64(i) << 20
		env.Spawn("w", func(p *sim.Proc) { d.WriteAt(p, off, 1<<20, i) })
	}
	env.Run()

	env2 := sim.NewEnv()
	d2 := New(env2, SATA(), 1<<30)
	for i := 0; i < 8; i++ {
		off := int64(i) << 20
		d2.Poke(off, 1<<20, i)
	}
	for i := 0; i < 8; i++ {
		off := int64(i) << 20
		env2.Spawn("r", func(p *sim.Proc) { d2.ReadAt(p, off, 1<<20) })
	}
	end := env2.Run()
	one := SATA().ReadTime(1 << 20)
	if end != 2*one {
		t.Errorf("8 reads on 4 channels took %v, want %v", end, 2*one)
	}
}

func TestNVMeParallelismBeatsSATAUnderLoad(t *testing.T) {
	run := func(prof Profile) sim.Time {
		env := sim.NewEnv()
		d := New(env, prof, 1<<30)
		for i := 0; i < 16; i++ {
			off := int64(i) * 4096
			d.Poke(off, 4096, i)
			env.Spawn("r", func(p *sim.Proc) { d.ReadAt(p, off, 4096) })
		}
		return env.Run()
	}
	sata, nvme := run(SATA()), run(NVMe())
	if float64(sata)/float64(nvme) < 4 {
		t.Errorf("16-deep 4K reads: SATA %v vs NVMe %v; want ≥4x gap", sata, nvme)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, SATA(), 1<<20)
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-capacity write did not panic")
		}
	}()
	env.Spawn("w", func(p *sim.Proc) { d.WriteAt(p, 1<<20-100, 4096, nil) })
	env.Run()
}

func TestTrimAndPeek(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, NVMe(), 1<<30)
	d.Poke(0, 100, "x")
	if v, n, ok := d.Peek(0); !ok || v != "x" || n != 100 {
		t.Errorf("Peek after Poke: (%v,%d,%v)", v, n, ok)
	}
	d.Trim(0)
	if _, _, ok := d.Peek(0); ok {
		t.Errorf("Peek after Trim still found extent")
	}
}

func TestStatsAndBusyTime(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, SATA(), 1<<30)
	env.Spawn("io", func(p *sim.Proc) {
		d.WriteAt(p, 0, 1000, nil)
		d.ReadAt(p, 0, 1000)
		d.ServeRaw(p, true, 500)
	})
	env.Run()
	if d.Writes != 2 || d.Reads != 1 {
		t.Errorf("ops writes=%d reads=%d, want 2/1", d.Writes, d.Reads)
	}
	if d.BytesWrite != 1500 || d.BytesRead != 1000 {
		t.Errorf("bytes w=%d r=%d, want 1500/1000", d.BytesWrite, d.BytesRead)
	}
	if d.BusyTime <= 0 {
		t.Errorf("busy time not accumulated")
	}
}

// Property: service time is monotonic in size for any profile.
func TestServiceTimeMonotonicProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		sa, sb := int(a%(64<<20)), int(b%(64<<20))
		if sa > sb {
			sa, sb = sb, sa
		}
		for _, prof := range []Profile{SATA(), NVMe()} {
			if prof.ReadTime(sa) > prof.ReadTime(sb) {
				return false
			}
			if prof.WriteTime(sa) > prof.WriteTime(sb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: writing then reading any extent returns the same payload.
func TestWriteReadRoundTripProperty(t *testing.T) {
	f := func(offs []uint16, tag uint64) bool {
		env := sim.NewEnv()
		d := New(env, NVMe(), 1<<30)
		seen := make(map[int64]uint64)
		ok := true
		env.Spawn("io", func(p *sim.Proc) {
			for i, o := range offs {
				off := int64(o) * 4096
				val := tag + uint64(i)
				d.WriteAt(p, off, 4096, val)
				seen[off] = val
			}
			for off, want := range seen {
				got, found := d.ReadAt(p, off, 4096)
				if !found || got != want {
					ok = false
				}
			}
		})
		env.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
