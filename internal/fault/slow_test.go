package fault

import (
	"testing"

	"hybridkv/internal/sim"
)

func TestSlowWindowDelaysBothDirectionsAndScales(t *testing.T) {
	in := New(Config{Seed: 1})
	in.AddSlow("srv", 100, 200, 30*sim.Microsecond, 3*sim.Microsecond)
	if !in.Active() {
		t.Error("injector with a slow window reports inactive")
	}
	cases := []struct {
		src, dst string
		size     int
		at       sim.Time
		delay    sim.Time
	}{
		{"cli", "srv", 1024, 99, 0},                     // before the window
		{"cli", "srv", 1024, 100, 33 * sim.Microsecond}, // start inclusive: floor + 1KiB
		{"srv", "cli", 4096, 150, 42 * sim.Microsecond}, // outbound limps too: floor + 4KiB
		{"cli", "srv", 0, 150, 30 * sim.Microsecond},    // zero-size still pays the floor
		{"cli", "srv", 1024, 200, 0},                    // end exclusive
		{"cli", "other", 1 << 20, 150, 0},               // unrelated nodes untouched
	}
	for _, tc := range cases {
		v := in.Transmit(tc.src, tc.dst, tc.size, tc.at)
		if v.ExtraDelay != tc.delay {
			t.Errorf("Transmit(%s→%s size=%d @%d).ExtraDelay = %v, want %v",
				tc.src, tc.dst, tc.size, tc.at, v.ExtraDelay, tc.delay)
		}
		if v.Drop || v.Duplicate {
			t.Errorf("slow window dropped or duplicated %s→%s @%d", tc.src, tc.dst, tc.at)
		}
	}
	if in.Slowed != 3 {
		t.Errorf("Slowed = %d, want 3", in.Slowed)
	}
	if c := in.Counters(); c.Get("net-slowed") != 3 {
		t.Errorf("net-slowed counter = %d, want 3", c.Get("net-slowed"))
	}
}

// TestOverlappingSlowWindowsTakeWorst: stacked schedules — or a message
// whose source AND destination both limp — charge the single worst window,
// never the sum, so symmetric degradation is not double-billed.
func TestOverlappingSlowWindowsTakeWorst(t *testing.T) {
	in := New(Config{Seed: 1})
	in.AddSlow("a", 0, 100, 10*sim.Microsecond, 0)
	in.AddSlow("b", 0, 100, 25*sim.Microsecond, 0)
	if d := in.Transmit("a", "b", 64, 50).ExtraDelay; d != 25*sim.Microsecond {
		t.Errorf("both-endpoints-limping delay = %v, want the worst window's 25µs", d)
	}
	// One message crossing two windows still counts once.
	if in.Slowed != 1 {
		t.Errorf("Slowed = %d, want 1", in.Slowed)
	}
}

// TestSlowWindowConsumesNoRNG: slow-window delays are schedule-driven, not
// drawn — an injector with probabilistic faults must produce the exact
// same drop/dup stream with and without a slow window installed, which is
// what makes a limping-node run replayable against its healthy twin.
func TestSlowWindowConsumesNoRNG(t *testing.T) {
	verdicts := func(slow bool) []simVerdict {
		in := New(Config{Seed: 7, Drop: 0.2, Dup: 0.2})
		if slow {
			in.AddSlow("b", 0, 1000, 5*sim.Microsecond, 0)
		}
		out := make([]simVerdict, 0, 300)
		for i := 0; i < 300; i++ {
			v := in.Transmit("a", "b", 100, sim.Time(i))
			out = append(out, simVerdict{v.Drop, v.Duplicate, 0})
		}
		return out
	}
	plain, slowed := verdicts(false), verdicts(true)
	for i := range plain {
		if plain[i] != slowed[i] {
			t.Fatalf("verdict %d: drop/dup stream diverged once a slow window was added", i)
		}
	}
}
