package fault

import (
	"testing"

	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
)

// Arming AddCorrupt must not perturb a single RNG draw: the drop/dup/spike
// verdict stream of a corruption-armed injector is bit-identical to the
// same-seed injector without it. This is the zero-extra-RNG-draw contract
// that keeps faulted runs replayable against their uncorrupted twins.
func TestAddCorruptDoesNotPerturbOtherFaults(t *testing.T) {
	base := New(Config{Seed: 7, Drop: 0.2, Dup: 0.1, Spike: 0.1})
	armed := New(Config{Seed: 7, Drop: 0.2, Dup: 0.1, Spike: 0.1})
	armed.AddCorrupt(5, 0.3)
	sawCorrupt := false
	for i := 0; i < 1000; i++ {
		vb := base.Transmit("a", "b", 100+i, sim.Time(i))
		va := armed.Transmit("a", "b", 100+i, sim.Time(i))
		if vb.Drop != va.Drop || vb.Duplicate != va.Duplicate || vb.ExtraDelay != va.ExtraDelay {
			t.Fatalf("message %d: corruption arming changed another verdict: %+v vs %+v", i, vb, va)
		}
		if vb.Corrupt {
			t.Fatalf("message %d: unarmed injector issued a Corrupt verdict", i)
		}
		if va.Corrupt {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Error("rate-0.3 corruption never bit in 1000 messages")
	}
	if base.Drops != armed.Drops || base.Dups != armed.Dups || base.Spikes != armed.Spikes {
		t.Errorf("fault counts diverged: base {%d %d %d} armed {%d %d %d}",
			base.Drops, base.Dups, base.Spikes, armed.Drops, armed.Dups, armed.Spikes)
	}
	if armed.Corrupts == 0 {
		t.Error("Corrupts stat not counted")
	}
	if c := armed.Counters(); c.Get("net-corrupts") != armed.Corrupts {
		t.Errorf("net-corrupts counter = %d, want %d", c.Get("net-corrupts"), armed.Corrupts)
	}
}

// The corrupt decision is a pure function of (seed, message coordinates):
// the same seed replays the exact same bite pattern, and a different seed
// diverges somewhere.
func TestAddCorruptDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(Config{Seed: 1})
		in.AddCorrupt(seed, 0.3)
		out := make([]bool, 500)
		for i := range out {
			out[i] = in.Transmit("s1", "s2", 64+i, sim.Time(i*100)).Corrupt
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d: same-seed corrupt verdicts differ", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different corruption seeds produced identical bite patterns")
	}
	// AddCorrupt alone makes the injector active.
	in := New(Config{Seed: 1})
	if in.Active() {
		t.Fatal("zero-config injector active")
	}
	in.AddCorrupt(1, 0.5)
	if !in.Active() {
		t.Error("corruption-armed injector reports inactive")
	}
}

// corruptToken is a test payload that knows how to present itself garbled.
type corruptToken struct{ v int }

func (c corruptToken) CorruptCopy() any { return corruptToken{v: -c.v} }

// The fabric delivers a Corruptible payload's CorruptCopy when the verdict
// says Corrupt, and delivers non-Corruptible payloads intact — corrupting a
// frame the receiver would CRC-drop is indistinguishable from Drop, which is
// already modeled.
func TestFabricDeliversCorruptCopy(t *testing.T) {
	env := sim.NewEnv()
	fab := simnet.New(env, simnet.FDRInfiniBand())
	a, b := fab.AddNode("a"), fab.AddNode("b")
	in := New(Config{Seed: 1})
	in.AddCorrupt(9, 1.0) // every message bites
	fab.SetFaults(in)
	var got []any
	b.SetReceiver(func(m *simnet.Message) { got = append(got, m.Payload) })
	env.Spawn("tx", func(p *sim.Proc) {
		a.Send(p, "b", 64, corruptToken{v: 7})
		a.Send(p, "b", 64, "plain-string") // not Corruptible
	})
	env.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(got))
	}
	if got[0] != (corruptToken{v: -7}) {
		t.Errorf("corruptible payload delivered as %v, want its CorruptCopy", got[0])
	}
	if got[1] != "plain-string" {
		t.Errorf("non-corruptible payload mutated: %v", got[1])
	}
	if fab.Corrupted != 1 {
		t.Errorf("Fabric.Corrupted = %d, want 1 (only the Corruptible payload counts)", fab.Corrupted)
	}
}
