// Package fault provides deterministic fault injection for the simulated
// cluster: probabilistic message drop / duplication / latency spikes on the
// fabric, scheduled link-down windows per node, and sustained slow windows
// (bandwidth brown-outs) per node. An Injector plugs into simnet.Fabric via
// SetFaults; every probabilistic decision comes from a seeded RNG consulted
// in delivery order, and every window is a fixed [From, To) schedule, so
// faulted runs are exactly as reproducible as fault-free ones.
//
// Server crash/restart schedules live in internal/server (ScheduleCrash) and
// SSD I/O error injection in internal/blockdev (SetFaults); this package
// covers the interconnect.
package fault

import (
	"math/rand"

	"hybridkv/internal/metrics"
	"hybridkv/internal/sim"
	"hybridkv/internal/simnet"
)

// Config sets the per-message fault probabilities.
type Config struct {
	// Seed drives the injector's RNG; equal seeds give equal fault
	// sequences under the deterministic kernel.
	Seed int64
	// Drop is the probability a message is lost after serialization (the
	// sender cannot tell; its Sent event still fires).
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Spike is the probability a message is delayed by SpikeDelay beyond
	// normal propagation. A spike is a one-shot, per-message event; it
	// cannot model a link that stays degraded. For sustained degradation
	// use AddSlow, which schedules a SlowWindow instead.
	Spike float64
	// SpikeDelay is the extra latency of a spiked message
	// (default 100 µs).
	SpikeDelay sim.Time
}

// Window is one link-down interval for a node: messages to or from the node
// in [From, To) are dropped.
type Window struct {
	Node     string
	From, To sim.Time
}

// DirWindow is one asymmetric (one-directional) partition: messages from Src
// to Dst in [From, To) are dropped, while the reverse direction keeps
// flowing. This models the classic half-open failure — a dead transmit path
// with a live receive path — that symmetric link-down windows cannot
// express, and that replication ack/retry logic must survive.
type DirWindow struct {
	Src, Dst string
	From, To sim.Time
}

// SlowWindow is one sustained link-degradation interval for a node: every
// message to or from the node in [From, To) is delayed by Floor plus
// PerKB-scaled serialization drag beyond normal propagation. Unlike a
// Spike — a one-shot random event on a single message — a slow window is
// the gray failure itself: the link stays up, every message still arrives,
// and only latency (fixed floor plus a bandwidth-shaped size term) tells
// the story. No RNG is consulted, so replays are exact.
type SlowWindow struct {
	Node     string
	From, To sim.Time
	// Floor is the fixed extra latency added to every affected message.
	Floor sim.Time
	// PerKB adds delay proportional to message size (per KiB), modeling a
	// degraded effective link bandwidth rather than a fixed stall.
	PerKB sim.Time
}

// Injector implements simnet.FaultInjector with seeded randomness.
type Injector struct {
	cfg         Config
	rng         *rand.Rand
	windows     []Window
	dirWindows  []DirWindow
	slowWindows []SlowWindow

	// In-flight corruption (AddCorrupt): decided by a pure hash of the
	// message coordinates, never the RNG stream, so arming it leaves every
	// other draw — and therefore the rest of the run — bit-identical.
	corruptSeed uint64
	corruptRate float64

	// Stats
	Drops          int64 // random drops
	Dups           int64
	Spikes         int64
	LinkDrops      int64 // drops due to a link-down window
	PartitionDrops int64 // drops due to an asymmetric partition window
	Slowed         int64 // messages delayed by a slow window
	Corrupts       int64 // payloads delivered bit-flipped
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	if cfg.SpikeDelay <= 0 {
		cfg.SpikeDelay = 100 * sim.Microsecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// AddLinkDown schedules a link-down window for node: traffic to or from it
// in [from, to) is dropped.
func (in *Injector) AddLinkDown(node string, from, to sim.Time) {
	in.windows = append(in.windows, Window{Node: node, From: from, To: to})
}

// AddPartition schedules an asymmetric partition: messages from src to dst
// in [from, to) are dropped; dst→src traffic is unaffected. Call twice with
// the arguments swapped for a symmetric partition between two nodes.
func (in *Injector) AddPartition(src, dst string, from, to sim.Time) {
	in.dirWindows = append(in.dirWindows, DirWindow{Src: src, Dst: dst, From: from, To: to})
}

// AddSlow schedules a sustained slow window for node: every message to or
// from it in [from, to) is delayed by floor plus perKB for each KiB of
// message size. Deterministic — no RNG draw — so the same schedule replays
// to the same virtual-time trace.
func (in *Injector) AddSlow(node string, from, to sim.Time, floor, perKB sim.Time) {
	in.slowWindows = append(in.slowWindows, SlowWindow{
		Node: node, From: from, To: to, Floor: floor, PerKB: perKB,
	})
}

// AddCorrupt arms seeded in-flight payload corruption: each message is
// garbled with probability rate, decided by a pure hash of (seed, src, dst,
// size, now) rather than the injector's RNG. Zero extra RNG draws means a
// run with corruption armed replays every drop/dup/spike decision of the
// same-seed run without it — the fault is additive, never entangling.
func (in *Injector) AddCorrupt(seed int64, rate float64) {
	in.corruptSeed = uint64(seed)
	in.corruptRate = rate
}

// corruptHash mixes the message coordinates with the corruption seed via a
// splitmix64-style finalizer. Stateless: the same message at the same time
// always gets the same verdict, and a retransmit at a different virtual time
// re-rolls — which is what lets sum-checked receivers converge on resend.
func corruptHash(seed uint64, src, dst string, size int, now sim.Time) uint64 {
	x := seed ^ 0x9e3779b97f4a7c15
	for _, s := range []string{src, dst} {
		for i := 0; i < len(s); i++ {
			x = (x ^ uint64(s[i])) * 1099511628211
		}
		x ^= 0xff
	}
	x ^= uint64(size) * 0xbf58476d1ce4e5b9
	x ^= uint64(now) * 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// slowDelay returns the extra latency slow windows impose on a message of
// the given size between src and dst at time at. Overlapping windows (both
// endpoints limping, or stacked schedules) take the worst single window
// rather than summing, so a symmetric schedule does not double-charge.
func (in *Injector) slowDelay(src, dst string, size int, at sim.Time) sim.Time {
	var d sim.Time
	for _, w := range in.slowWindows {
		if w.Node != src && w.Node != dst {
			continue
		}
		if at < w.From || at >= w.To {
			continue
		}
		e := w.Floor + w.PerKB*sim.Time(size)/1024
		if e > d {
			d = e
		}
	}
	return d
}

// Partitioned reports whether the src→dst direction is cut at time at.
func (in *Injector) Partitioned(src, dst string, at sim.Time) bool {
	for _, w := range in.dirWindows {
		if w.Src == src && w.Dst == dst && at >= w.From && at < w.To {
			return true
		}
	}
	return false
}

// LinkDown reports whether node's link is down at time at.
func (in *Injector) LinkDown(node string, at sim.Time) bool {
	for _, w := range in.windows {
		if w.Node == node && at >= w.From && at < w.To {
			return true
		}
	}
	return false
}

// Active reports whether the injector can affect any message at all. An
// inactive injector never consults its RNG, so installing one with a zero
// Config leaves the simulation bit-identical to having none.
func (in *Injector) Active() bool {
	return in.cfg.Drop > 0 || in.cfg.Dup > 0 || in.cfg.Spike > 0 ||
		in.corruptRate > 0 ||
		len(in.windows) > 0 || len(in.dirWindows) > 0 || len(in.slowWindows) > 0
}

// Transmit decides the fate of one message at serialization end.
func (in *Injector) Transmit(src, dst string, size int, now sim.Time) simnet.Verdict {
	var v simnet.Verdict
	if !in.Active() {
		return v
	}
	if in.LinkDown(src, now) || in.LinkDown(dst, now) {
		in.LinkDrops++
		v.Drop = true
		return v
	}
	if in.Partitioned(src, dst, now) {
		in.PartitionDrops++
		v.Drop = true
		return v
	}
	if in.cfg.Drop > 0 && in.rng.Float64() < in.cfg.Drop {
		in.Drops++
		v.Drop = true
		return v
	}
	if in.cfg.Dup > 0 && in.rng.Float64() < in.cfg.Dup {
		in.Dups++
		v.Duplicate = true
	}
	if in.cfg.Spike > 0 && in.rng.Float64() < in.cfg.Spike {
		in.Spikes++
		v.ExtraDelay = in.cfg.SpikeDelay
	}
	if d := in.slowDelay(src, dst, size, now); d > 0 {
		in.Slowed++
		v.ExtraDelay += d
	}
	// Corruption is decided last and by hash, not RNG: the draws above are
	// identical whether or not corruption is armed.
	if in.corruptRate > 0 {
		h := corruptHash(in.corruptSeed, src, dst, size, now)
		if float64(h>>11)/float64(1<<53) < in.corruptRate {
			in.Corrupts++
			v.Corrupt = true
		}
	}
	return v
}

// Counters exports the injector's statistics as named counters.
func (in *Injector) Counters() *metrics.Counters {
	c := metrics.NewCounters()
	c.Add("net-drops", in.Drops)
	c.Add("net-dups", in.Dups)
	c.Add("net-spikes", in.Spikes)
	c.Add("net-link-drops", in.LinkDrops)
	c.Add("net-partition-drops", in.PartitionDrops)
	c.Add("net-slowed", in.Slowed)
	c.Add("net-corrupts", in.Corrupts)
	return c
}
