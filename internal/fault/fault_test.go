package fault

import (
	"testing"

	"hybridkv/internal/sim"
)

func TestZeroConfigInjectorIsInert(t *testing.T) {
	in := New(Config{Seed: 1})
	if in.Active() {
		t.Error("zero-config injector reports Active")
	}
	for i := 0; i < 1000; i++ {
		v := in.Transmit("a", "b", 100, sim.Time(i))
		if v.Drop || v.Duplicate || v.ExtraDelay != 0 {
			t.Fatalf("inert injector issued verdict %+v", v)
		}
	}
	if in.Drops+in.Dups+in.Spikes+in.LinkDrops != 0 {
		t.Error("inert injector counted faults")
	}
}

func TestDropProbabilityOneDropsEverything(t *testing.T) {
	in := New(Config{Seed: 1, Drop: 1})
	for i := 0; i < 100; i++ {
		if v := in.Transmit("a", "b", 100, 0); !v.Drop {
			t.Fatal("Drop=1 let a message through")
		}
	}
	if in.Drops != 100 {
		t.Errorf("Drops = %d, want 100", in.Drops)
	}
}

func TestSeededVerdictsAreDeterministic(t *testing.T) {
	run := func() []simVerdict {
		in := New(Config{Seed: 99, Drop: 0.1, Dup: 0.1, Spike: 0.1})
		out := make([]simVerdict, 0, 500)
		for i := 0; i < 500; i++ {
			v := in.Transmit("a", "b", 100, sim.Time(i))
			out = append(out, simVerdict{v.Drop, v.Duplicate, v.ExtraDelay})
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across identically-seeded runs", i)
		}
	}
	// And a different seed must differ somewhere.
	in := New(Config{Seed: 100, Drop: 0.1, Dup: 0.1, Spike: 0.1})
	same := true
	for i := range a {
		v := in.Transmit("a", "b", 100, sim.Time(i))
		if (simVerdict{v.Drop, v.Duplicate, v.ExtraDelay}) != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical verdict streams")
	}
}

type simVerdict struct {
	drop bool
	dup  bool
	del  sim.Time
}

func TestLinkDownWindow(t *testing.T) {
	in := New(Config{Seed: 1})
	in.AddLinkDown("srv", 100, 200)
	if !in.Active() {
		t.Error("injector with a window reports inactive")
	}
	cases := []struct {
		src, dst string
		at       sim.Time
		drop     bool
	}{
		{"cli", "srv", 99, false},  // before the window
		{"cli", "srv", 100, true},  // window start is inclusive
		{"srv", "cli", 150, true},  // outbound traffic dies too
		{"cli", "srv", 200, false}, // window end is exclusive
		{"cli", "other", 150, false},
	}
	for _, tc := range cases {
		if got := in.Transmit(tc.src, tc.dst, 10, tc.at).Drop; got != tc.drop {
			t.Errorf("Transmit(%s→%s @%d).Drop = %v, want %v", tc.src, tc.dst, tc.at, got, tc.drop)
		}
	}
	if in.LinkDrops != 2 {
		t.Errorf("LinkDrops = %d, want 2", in.LinkDrops)
	}
	if in.Drops != 0 {
		t.Errorf("LinkDown drops counted as random drops: %d", in.Drops)
	}
}

func TestAsymmetricPartitionDropsOneDirectionOnly(t *testing.T) {
	in := New(Config{Seed: 1})
	in.AddPartition("a", "b", 100, 200)
	if !in.Active() {
		t.Error("injector with a partition window reports inactive")
	}
	cases := []struct {
		src, dst string
		at       sim.Time
		drop     bool
	}{
		{"a", "b", 99, false},  // before the window
		{"a", "b", 100, true},  // window start is inclusive
		{"b", "a", 150, false}, // reverse direction keeps flowing
		{"a", "b", 199, true},
		{"a", "b", 200, false}, // window end is exclusive
		{"a", "c", 150, false}, // other destinations unaffected
		{"c", "b", 150, false}, // other sources unaffected
	}
	for _, tc := range cases {
		if got := in.Transmit(tc.src, tc.dst, 10, tc.at).Drop; got != tc.drop {
			t.Errorf("Transmit(%s→%s @%d).Drop = %v, want %v", tc.src, tc.dst, tc.at, got, tc.drop)
		}
	}
	if in.PartitionDrops != 2 {
		t.Errorf("PartitionDrops = %d, want 2", in.PartitionDrops)
	}
	if in.LinkDrops != 0 || in.Drops != 0 {
		t.Errorf("partition drops leaked into other counters: link=%d random=%d", in.LinkDrops, in.Drops)
	}
	if c := in.Counters(); c.Get("net-partition-drops") != 2 {
		t.Errorf("net-partition-drops counter = %d, want 2", c.Get("net-partition-drops"))
	}
}

func TestSymmetricPartitionFromTwoDirWindows(t *testing.T) {
	in := New(Config{Seed: 1})
	in.AddPartition("a", "b", 0, 100)
	in.AddPartition("b", "a", 0, 100)
	if !in.Transmit("a", "b", 10, 50).Drop || !in.Transmit("b", "a", 10, 50).Drop {
		t.Error("two mirrored DirWindows did not cut both directions")
	}
}

func TestSpikeDelayDefaults(t *testing.T) {
	in := New(Config{Seed: 3, Spike: 1})
	v := in.Transmit("a", "b", 10, 0)
	if v.ExtraDelay != 100*sim.Microsecond {
		t.Errorf("default spike delay %v, want 100µs", v.ExtraDelay)
	}
	if v.Drop {
		t.Error("spike verdict also dropped")
	}
	c := in.Counters()
	if c.Get("net-spikes") != 1 {
		t.Errorf("net-spikes counter = %d", c.Get("net-spikes"))
	}
}
