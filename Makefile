GO ?= go

.PHONY: build test vet race smoke robustness check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Run every registered experiment end to end at a tiny operation count.
smoke:
	$(GO) run ./cmd/mc-bench -smoke

# The robustness gate: fault-injection, cold-restart recovery, bounded
# admission under overload, and the chaos-soak invariant checker, all at
# smoke scale. Also covered by the full `smoke` run; kept as an explicit
# target so failures name the robustness suite directly.
robustness:
	$(GO) run ./cmd/mc-bench -smoke faults recovery overload chaos

# The pre-merge gate: static analysis, the full suite under the race
# detector, the robustness gate, and a registry smoke run.
check: vet race robustness smoke
