GO ?= go

.PHONY: build test vet race smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Run every registered experiment end to end at a tiny operation count.
smoke:
	$(GO) run ./cmd/mc-bench -smoke

# The pre-merge gate: static analysis, the full suite under the race
# detector, and a registry smoke run.
check: vet race smoke
