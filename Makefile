GO ?= go

.PHONY: build test vet race race-robustness smoke robustness vuln check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The concurrency-heavy robustness packages under the race detector at
# -count=2: the client guard/hedge/cancel races, the bypass READ-vs-
# eviction-vs-crash soak in cluster, the replication forward/ack/scrub
# engine, and the history checker. A named subset of `race`, kept
# separate so a detector hit points straight at the robustness suite
# (and so it stays cheap enough to run on every edit).
race-robustness:
	$(GO) test -race -count=2 ./internal/core ./internal/cluster ./internal/replication ./internal/history

# Run every registered experiment end to end at a tiny operation count.
smoke:
	$(GO) run ./cmd/mc-bench -smoke

# The robustness gate: fault-injection, cold-restart recovery, bounded
# admission under overload, the chaos-soak invariant checker, the
# replication durability sweep, the server-bypass read-path comparison,
# the hot-key fan-out flash crowd (including its fan-out-under-kills
# history cell), and the dynamic-membership churn (joins, a
# kill-during-migration, a decommission under the zero-loss checker),
# the gray-failure cells (a fail-slow node under brown-out routing,
# background pacing, and a crash-during-brown-out failover), and the
# bit-rot matrix (at-rest SSD corruption vs read verification and scrub
# repair, with the corrupt-read oracle), all at smoke scale. Also
# covered by the full `smoke` run; kept as an explicit target so
# failures name the robustness suite directly.
robustness:
	$(GO) run ./cmd/mc-bench -smoke faults recovery overload chaos replication bypass hotkey membership grayfail bitrot

# Known-vulnerability scan, gated on the tool being present: the build
# environment is offline, so the scanner is never fetched here — when
# it is preinstalled the gate is real, otherwise it reports and passes.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping vulnerability scan"; fi

# The pre-merge gate: static analysis, the full suite under the race
# detector (plus the robustness packages at -count=2), the robustness
# gate, a registry smoke run, and the gated vulnerability scan.
check: vet race race-robustness robustness smoke vuln
