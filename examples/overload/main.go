// Overload: demonstrates graceful degradation under a bursty overload.
// The same open-loop burst schedule is driven twice against a deliberately
// squeezed two-server hybrid deployment (small request buffer, two storage
// workers, dataset 1.5× RAM so a third of the GETs pay an SSD read):
//
//   - unprotected: the paper's blocking buffer reservation. Every arrival
//     is eventually admitted; the burst parks in the server's buffer and
//     storage queue, and every admitted GET waits behind the backlog.
//   - protected: bounded admission (server.OverloadConfig) sheds
//     over-watermark SETs with StatusBusy + a load-proportional
//     retry-after hint, and the client rides it out — ErrBusy is
//     retryable, backoff is floored by the hint, and a per-server circuit
//     breaker routes retries around the saturated replica.
//
// SETs shed first (0.5× buffer watermark vs 0.9× for GETs), so reads keep
// flowing while writes are pushed into the idle gaps between bursts. No
// work is lost — every shed SET succeeds on a later attempt — the tail
// latency of admitted GETs is simply no longer coupled to the backlog.
//
//	go run ./examples/overload
package main

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/server"
	"hybridkv/internal/sim"
)

const (
	nOps      = 600
	valueSize = 8 * 1024
	serverMem = 8 << 20 // per server; dataset is sized 1.5× total RAM
	nBursts   = 3
	interArr  = 2 * sim.Microsecond // arrivals far faster than storage drains
	idleGap   = 3 * sim.Millisecond // protected servers catch up here
)

func keyOf(i int) string { return fmt.Sprintf("obj:%04d", i) }

func newCluster(protected bool) (*cluster.Cluster, int) {
	ccfg := core.Config{}
	cfg := cluster.Config{
		Design:         cluster.HRDMAOptNonBI,
		Profile:        cluster.ClusterA(),
		Servers:        2,
		ServerMem:      serverMem,
		StorageWorkers: 2,
		BufferBytes:    96 << 10,      // small async buffer: bursts saturate it
		SlabPageSize:   4 * valueSize, // frequent eviction flushes
	}
	if protected {
		cfg.Overload = server.OverloadConfig{
			Enabled:        true,
			QueueHigh:      24,                   // shed SETs once the storage queue is this deep
			RetryAfterUnit: 10 * sim.Microsecond, // busy hint scales with queue depth
		}
		ccfg.Breaker = core.BreakerConfig{Threshold: 8, Cooldown: 500 * sim.Microsecond}
	}
	cfg.Client = ccfg
	cl := cluster.New(cfg)
	keys := int(2 * serverMem * 3 / 2 / valueSize)
	cl.Preload(keys, valueSize, keyOf)
	return cl, keys
}

type result struct {
	getP99    sim.Time
	queuePeak int
	shedSets  int64
	shedGets  int64
	failed    int64
	busy      int64
	retries   int64
	reroutes  int64
}

// drive fires nOps guarded ops open loop — each arrival in its own
// process, so the driver never self-throttles and the bursts hit the
// servers at full rate.
func drive(protected bool) result {
	cl, keys := newCluster(protected)
	c := cl.Clients[0]
	guard := []core.IssueOption{
		core.WithDeadline(40 * sim.Millisecond),
		core.WithRetry(core.RetryPolicy{
			MaxAttempts:    6,
			AttemptTimeout: 8 * sim.Millisecond,
			Backoff:        100 * sim.Microsecond, // floored by the server's retry-after hint
			MaxBackoff:     2 * sim.Millisecond,
			Seed:           11,
		}),
	}
	var res result
	getLat := metrics.NewHist()
	perBurst := nOps / nBursts
	cl.Env.Spawn("bursts", func(p *sim.Proc) {
		for n := 0; n < nOps; n++ {
			op := core.Op{Code: protocol.OpGet, Key: keyOf(n * 7 % keys)}
			if n%2 == 0 { // 50:50 set/get
				op = core.Op{Code: protocol.OpSet, Key: op.Key, ValueSize: valueSize, Value: n}
			}
			cl.Env.Spawn(fmt.Sprintf("op%d", n), func(q *sim.Proc) {
				t0 := q.Now()
				req, err := c.Issue(q, op, guard...)
				if err != nil {
					panic(err)
				}
				c.Wait(q, req)
				if e := req.Err(); e != nil && e != core.ErrNotFound {
					res.failed++
				} else if op.Code == protocol.OpGet && e == nil {
					getLat.Add(q.Now() - t0)
				}
			})
			p.Sleep(interArr)
			if n%perBurst == perBurst-1 {
				p.Sleep(idleGap)
			}
		}
	})
	cl.Env.Run()
	res.getP99 = getLat.Quantile(0.99)
	for _, s := range cl.Servers {
		res.shedSets += s.ShedSets
		res.shedGets += s.ShedGets
		if s.QueuePeak > res.queuePeak {
			res.queuePeak = s.QueuePeak
		}
	}
	st := c.Stats()
	res.busy = st.Busy
	res.retries = st.Retries
	res.reroutes = st.BreakerReroutes
	return res
}

func main() {
	off := drive(false)
	on := drive(true)

	fmt.Printf("%d ops in %d bursts (50:50 set/get, %d KB values), H-RDMA-Opt-NonB-i, 2 servers:\n\n",
		nOps, nBursts, valueSize/1024)
	fmt.Printf("  %-22s %12s %8s %10s %8s %9s %9s %8s\n",
		"", "get p99", "q-peak", "shed s/g", "busy", "retries", "reroutes", "failed")
	fmt.Printf("  %-22s %12v %8d %6d/%-3d %8d %9d %9d %8d\n",
		"blocking reservation", off.getP99, off.queuePeak, off.shedSets, off.shedGets,
		off.busy, off.retries, off.reroutes, off.failed)
	fmt.Printf("  %-22s %12v %8d %6d/%-3d %8d %9d %9d %8d\n",
		"bounded admission", on.getP99, on.queuePeak, on.shedSets, on.shedGets,
		on.busy, on.retries, on.reroutes, on.failed)
	fmt.Printf("\n  admitted-GET p99 %.1fx lower; %d SETs shed and all retried to success,\n",
		float64(off.getP99)/float64(on.getP99), on.shedSets)
	fmt.Printf("  zero GETs shed (writes reject first), zero ops lost either way\n")
}
