// Overlap: demonstrates the communication/computation overlap the
// non-blocking extensions unlock (paper Section VI-D). The application has
// a fixed batch of Sets to push to a busy hybrid server AND a fixed amount
// of computation to do. With blocking memcached_set the two serialize; with
// iset + test the computation hides inside the storage latency.
//
//	go run ./examples/overlap
package main

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/sim"
)

const (
	nOps      = 400
	valueSize = 32 * 1024
	// computeNeed is the app's own work: 400 × 10 µs = 4 ms total.
	computeGrain = 10 * sim.Microsecond
)

func newCluster() *cluster.Cluster {
	cl := cluster.New(cluster.Config{
		Design:    cluster.HRDMAOptNonBI,
		Profile:   cluster.ClusterA(),
		ServerMem: 4 << 20, // tiny RAM: most sets spill to SSD
	})
	return cl
}

func main() {
	// Blocking: compute, then set, one by one.
	blocking := func() sim.Time {
		cl := newCluster()
		c := cl.Clients[0]
		var total sim.Time
		cl.Env.Spawn("app", func(p *sim.Proc) {
			t0 := p.Now()
			for i := 0; i < nOps; i++ {
				p.Sleep(computeGrain) // the app's own computation
				c.Set(p, fmt.Sprintf("result:%04d", i), valueSize, i, 0, 0)
			}
			total = p.Now() - t0
		})
		cl.Env.Run()
		return total
	}()

	// Non-blocking: issue the set, compute while it is in flight, check
	// completion with memcached_test, and wait only at the very end.
	nonblocking := func() sim.Time {
		cl := newCluster()
		c := cl.Clients[0]
		var total sim.Time
		cl.Env.Spawn("app", func(p *sim.Proc) {
			t0 := p.Now()
			reqs := make([]*core.Req, 0, nOps)
			for i := 0; i < nOps; i++ {
				req, err := c.ISet(p, fmt.Sprintf("result:%04d", i), valueSize, i, 0, 0)
				if err != nil {
					panic(err)
				}
				reqs = append(reqs, req)
				p.Sleep(computeGrain) // overlapped with the set in flight
				_ = c.Test(req)       // poll without blocking (memcached_test)
			}
			c.WaitAll(p, reqs) // guarantee completion (memcached_wait)
			total = p.Now() - t0
		})
		cl.Env.Run()
		return total
	}()

	compute := sim.Time(nOps) * computeGrain
	fmt.Printf("%d sets of 32 KB + %v of application compute, hybrid server with 4 MB RAM:\n\n", nOps, compute)
	fmt.Printf("  blocking set          : %v total\n", blocking)
	fmt.Printf("  iset + test + wait    : %v total  (%.1fx faster)\n",
		nonblocking, float64(blocking)/float64(nonblocking))
	fmt.Printf("\nthe non-blocking run hides the slab/SSD time behind the app's own compute\n")
}
