// Webcache: the classic online-data-processing deployment — a Memcached
// tier in front of a database. Clients issue Zipf-skewed reads; a cache
// miss costs a ~1.8 ms database round trip and re-populates the cache.
// The example contrasts an in-memory tier (which evicts under pressure and
// keeps paying miss penalties) with the hybrid tier (which retains
// everything in 'RAM+SSD' and almost never goes back to the database).
//
//	go run ./examples/webcache
package main

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/metrics"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

func run(design cluster.Design) (avg sim.Time, misses int64) {
	cl := cluster.New(cluster.Config{
		Design:    design,
		Profile:   cluster.ClusterA(),
		ServerMem: 16 << 20, // a deliberately small cache tier
	})
	c := cl.Clients[0]

	// 24 MB of 8 KB objects: 1.5x more data than the tier's RAM.
	const keys = 3072
	const valueSize = 8 * 1024
	cl.Preload(keys, valueSize, func(i int) string { return fmt.Sprintf("obj:%010d", i) })

	gen := workload.New(workload.Config{
		Keys: keys, ValueSize: valueSize,
		ReadFraction: 1.0, Pattern: workload.Zipf, ZipfS: 0.9, Seed: 99,
	})
	lat := metrics.NewHist()
	cl.Env.Spawn("frontend", func(p *sim.Proc) {
		for i := 0; i < 2000; i++ {
			_, key := gen.Next()
			t0 := p.Now()
			_, _, st := c.Get(p, key)
			if st == protocol.StatusNotFound {
				// Cache miss: ask the database, put the result back.
				v := cl.Backend.Fetch(p, key)
				c.Set(p, key, valueSize, v, 0, 0)
			}
			lat.Add(p.Now() - t0)
		}
	})
	cl.Env.Run()
	return lat.Mean(), cl.Backend.Accesses
}

func main() {
	fmt.Println("2000 Zipf reads against a 16 MB cache tier holding 24 MB of data:")
	for _, d := range []cluster.Design{cluster.RDMAMem, cluster.HRDMADef, cluster.HRDMAOptNonBI} {
		avg, misses := run(d)
		fmt.Printf("  %-18s avg read %8v   database round trips %4d\n", d, avg, misses)
	}
	fmt.Println("\nthe hybrid tier retains the full working set, so the database stays idle")
}
