// Quickstart: boot a single hybrid RDMA Memcached server, store and fetch
// a few values with the blocking API, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
)

func main() {
	// One H-RDMA-Opt-NonB-i server (async pipeline + adaptive slab I/O)
	// with 8 MB of slab memory on the SATA testbed profile, one client.
	cl := cluster.New(cluster.Config{
		Design:    cluster.HRDMAOptNonBI,
		Profile:   cluster.ClusterA(),
		ServerMem: 8 << 20,
	})
	c := cl.Clients[0]

	cl.Env.Spawn("app", func(p *sim.Proc) {
		// Blocking API, exactly like classic libmemcached.
		st := c.Set(p, "greeting", 13, "hello, world!", 0, 0)
		fmt.Printf("[%8v] set greeting        -> %v\n", p.Now(), st)

		v, size, st := c.Get(p, "greeting")
		fmt.Printf("[%8v] get greeting        -> %v (%d bytes, %v)\n", p.Now(), v, size, st)

		// Store enough 512 KB objects to overflow 8 MB of RAM: the hybrid
		// slab manager flushes cold slabs to the simulated SSD instead of
		// dropping them.
		for i := 0; i < 24; i++ {
			key := fmt.Sprintf("blob:%02d", i)
			c.Set(p, key, 512<<10, key, 0, 0)
		}
		fmt.Printf("[%8v] stored 12 MB into an 8 MB server\n", p.Now())

		// Every key is still retrievable — high data retention is the
		// point of the hybrid design.
		misses := 0
		for i := 0; i < 24; i++ {
			if _, _, st := c.Get(p, fmt.Sprintf("blob:%02d", i)); st != protocol.StatusOK {
				misses++
			}
		}
		fmt.Printf("[%8v] re-read all 24 blobs: %d misses\n", p.Now(), misses)
	})
	cl.Env.Run()

	mgr := cl.Servers[0].Store().Manager()
	fmt.Printf("\nserver state: %d items in RAM slabs, %d on SSD, %d slab pages flushed\n",
		mgr.RAMItems(), mgr.SSDItems(), mgr.FlushPages)
}
