// Batching: demonstrates the doorbell-batched multi-op pipeline. The same
// stream of Sets and Gets is driven two ways against a hybrid non-blocking
// server: one doorbell per operation (classic iset/iget), and coalesced
// through BeginBatch/Flush windows — one wire frame, one credit, and one
// server communication phase per window, with the window's slab evictions
// merged into a single sequential SSD flush.
//
//	go run ./examples/batching
package main

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/sim"
)

const (
	nOps      = 600
	nKeys     = 400 // 400 × 32 KB = 12.8 MB of data against 8 MB of RAM
	valueSize = 32 * 1024
	window    = 16 // ops coalesced per doorbell in the batched run
)

func newCluster() *cluster.Cluster {
	cl := cluster.New(cluster.Config{
		Design:       cluster.HRDMAOptNonBI,
		Profile:      cluster.ClusterA(),
		ServerMem:    8 << 20,   // tiny RAM: sets keep evicting to SSD
		SlabPageSize: 128 << 10, // small pages: evictions are frequent enough to merge
	})
	cl.Preload(nKeys, valueSize, keyOf)
	return cl
}

func keyOf(i int) string { return fmt.Sprintf("obj:%04d", i) }

type result struct {
	elapsed    sim.Time
	sends      int64
	frames     int64
	ssdFlushes int64
}

// drive issues nOps alternating Set/Get ops, batch at a time. batch=1 never
// opens a window, so it is exactly the pre-batching one-doorbell-per-op path.
func drive(batch int) result {
	cl := newCluster()
	c := cl.Clients[0]
	sends0, frames0 := c.Sends, c.Frames
	flushes0 := sumFlushes(cl)
	var res result
	cl.Env.Spawn("app", func(p *sim.Proc) {
		t0 := p.Now()
		for done := 0; done < nOps; done += batch {
			n := min(batch, nOps-done)
			if n > 1 {
				if err := c.BeginBatch(); err != nil {
					panic(err)
				}
			}
			reqs := make([]*core.Req, 0, n)
			for i := 0; i < n; i++ {
				op := done + i
				key := keyOf(op * 7 % nKeys)
				var req *core.Req
				var err error
				if op%2 == 0 {
					req, err = c.ISet(p, key, valueSize, op, 0, 0)
				} else {
					req, err = c.IGet(p, key)
				}
				if err != nil {
					panic(err)
				}
				reqs = append(reqs, req)
			}
			if n > 1 {
				if err := c.Flush(p); err != nil {
					panic(err)
				}
			}
			c.WaitAll(p, reqs)
		}
		res.elapsed = p.Now() - t0
	})
	cl.Env.Run()
	res.sends = c.Sends - sends0
	res.frames = c.Frames - frames0
	res.ssdFlushes = sumFlushes(cl) - flushes0
	return res
}

func sumFlushes(cl *cluster.Cluster) int64 {
	var n int64
	for _, s := range cl.Servers {
		n += s.Store().Manager().FlushWrites
	}
	return n
}

func main() {
	serial := drive(1)
	batched := drive(window)

	fmt.Printf("%d ops (50:50 set/get, %d KB values), H-RDMA-Opt-NonB-i, 8 MB server RAM:\n\n",
		nOps, valueSize/1024)
	fmt.Printf("  %-28s %12s %8s %8s %12s\n", "", "virtual time", "sends", "frames", "ssd flushes")
	fmt.Printf("  %-28s %12v %8d %8d %12d\n", "one doorbell per op", serial.elapsed,
		serial.sends, serial.frames, serial.ssdFlushes)
	fmt.Printf("  %-28s %12v %8d %8d %12d\n",
		fmt.Sprintf("BeginBatch/Flush, window %d", window), batched.elapsed,
		batched.sends, batched.frames, batched.ssdFlushes)
	fmt.Printf("\n  %.2fx faster, %.1fx fewer wire sends, %.1fx fewer eviction flushes\n",
		float64(serial.elapsed)/float64(batched.elapsed),
		float64(serial.sends)/float64(batched.sends),
		float64(serial.ssdFlushes)/float64(batched.ssdFlushes))
	fmt.Printf("\neach window is one doorbell + one credit + one server storage phase;\n")
	fmt.Printf("the window's evictions merge into one larger sequential SSD write\n")
}
