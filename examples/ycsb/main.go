// YCSB: run the five supported YCSB core workloads against the hybrid
// non-blocking design and the existing H-RDMA-Def baseline, printing a
// side-by-side throughput comparison. Demonstrates the workload presets and
// the server statistics surface.
//
//	go run ./examples/ycsb
package main

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/protocol"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

const (
	serverMem = 64 << 20
	valueSize = 8 * 1024
	opsTotal  = 4000
)

func run(design cluster.Design, w workload.YCSB) (opsPerSec float64) {
	cl := cluster.New(cluster.Config{
		Design:    design,
		Profile:   cluster.ClusterA(),
		ServerMem: serverMem,
	})
	keys := int(serverMem * 3 / 2 / valueSize)
	cl.Preload(keys, valueSize, func(i int) string { return fmt.Sprintf("obj:%010d", i) })

	cfg, rmw, err := workload.YCSBConfig(w, keys, valueSize, 7)
	if err != nil {
		panic(err)
	}
	gen := workload.New(cfg)
	c := cl.Clients[0]
	start := cl.Env.Now()
	cl.Env.Spawn("ycsb", func(p *sim.Proc) {
		if design.NonBlocking() {
			runNonBlocking(p, c, gen)
			return
		}
		runBlocking(p, cl, c, gen, rmw)
	})
	cl.Env.Run()
	elapsed := cl.Env.Now() - start
	return float64(opsTotal) / elapsed.Seconds()
}

func runBlocking(p *sim.Proc, cl *cluster.Cluster, c *core.Client, gen *workload.Generator, rmw bool) {
	for i := 0; i < opsTotal; i++ {
		kind, key := gen.Next()
		switch {
		case kind == workload.OpGet:
			if _, _, st := c.Get(p, key); st == protocol.StatusNotFound {
				v := cl.Backend.Fetch(p, key)
				c.Set(p, key, valueSize, v, 0, 0)
			}
		case rmw:
			_, _, cas, st := c.Gets(p, key)
			if st != protocol.StatusOK ||
				c.CompareAndSet(p, key, valueSize, key, 0, 0, cas) != protocol.StatusStored {
				c.Set(p, key, valueSize, key, 0, 0)
			}
		default:
			c.Set(p, key, valueSize, key, 0, 0)
		}
	}
}

func runNonBlocking(p *sim.Proc, c *core.Client, gen *workload.Generator) {
	const window = 32
	left := opsTotal
	for left > 0 {
		n := window
		if n > left {
			n = left
		}
		reqs := make([]*core.Req, 0, n)
		for i := 0; i < n; i++ {
			kind, key := gen.Next()
			var req *core.Req
			var err error
			if kind == workload.OpGet {
				req, err = c.IGet(p, key)
			} else {
				req, err = c.ISet(p, key, valueSize, key, 0, 0)
			}
			if err != nil {
				panic(err)
			}
			reqs = append(reqs, req)
		}
		c.WaitAll(p, reqs)
		left -= n
	}
}

func main() {
	fmt.Printf("YCSB core workloads, 96 MB of 8 KB objects in a 64 MB hybrid server (ops/sec):\n\n")
	fmt.Printf("  %-8s %-32s %14s %14s\n", "preset", "mix", "H-RDMA-Def", "NonB-i")
	mixes := map[workload.YCSB]string{
		workload.YCSBA: "50/50 read/update, zipf",
		workload.YCSBB: "95/5 read/update, zipf",
		workload.YCSBC: "read-only, zipf",
		workload.YCSBD: "95/5 read/insert, latest",
		workload.YCSBF: "50/50 read/read-modify-write",
	}
	for _, w := range []workload.YCSB{workload.YCSBA, workload.YCSBB, workload.YCSBC, workload.YCSBD, workload.YCSBF} {
		def := run(cluster.HRDMADef, w)
		nonb := run(cluster.HRDMAOptNonBI, w)
		fmt.Printf("  %-8s %-32s %14.0f %14.0f   (%.1fx)\n",
			workload.YCSBName(w), mixes[w], def, nonb, nonb/def)
	}
}
