// Bursty I/O: the paper's Listing 2 — a burst-buffer style application that
// writes and reads data in blocks, splitting each block into chunks that
// scatter across 4 Memcached servers, issuing every chunk with the
// non-blocking API and guaranteeing completion block by block.
//
//	go run ./examples/burstyio
package main

import (
	"fmt"

	"hybridkv/internal/cluster"
	"hybridkv/internal/core"
	"hybridkv/internal/sim"
	"hybridkv/internal/workload"
)

func main() {
	cl := cluster.New(cluster.Config{
		Design:    cluster.HRDMAOptNonBI,
		Profile:   cluster.ClusterB(), // NVMe testbed
		Servers:   4,
		ServerMem: 16 << 20,
	})
	c := cl.Clients[0]

	bc := workload.BlockConfig{
		BlockSize:  2 << 20,    // 2 MB blocks
		ChunkSize:  256 * 1024, // 256 KB chunks (key-value pairs)
		TotalBytes: 32 << 20,   // 32 MB of checkpoint data
	}

	cl.Env.Spawn("burst-writer", func(p *sim.Proc) {
		t0 := p.Now()
		for blk := 0; blk < bc.Blocks(); blk++ {
			// Issue all chunks of the block without blocking
			// (memcached_iset), then wait for the whole block
			// (memcached_wait) — completion is guaranteed block by block.
			reqs := make([]*core.Req, 0, bc.ChunksPerBlock())
			for ch := 0; ch < bc.ChunksPerBlock(); ch++ {
				req, err := c.ISet(p, bc.ChunkKey(blk, ch), bc.ChunkSize, blk, 0, 0)
				if err != nil {
					panic(err)
				}
				reqs = append(reqs, req)
			}
			c.WaitAll(p, reqs)
		}
		wrote := p.Now() - t0
		fmt.Printf("wrote %d blocks (%d MB) in %v of virtual time — %.0f MB/s\n",
			bc.Blocks(), bc.TotalBytes>>20, wrote,
			float64(bc.TotalBytes)/wrote.Seconds()/1e6)

		// Read the data back, again overlapping all chunks of a block.
		t0 = p.Now()
		for blk := 0; blk < bc.Blocks(); blk++ {
			reqs := make([]*core.Req, 0, bc.ChunksPerBlock())
			for ch := 0; ch < bc.ChunksPerBlock(); ch++ {
				req, err := c.IGet(p, bc.ChunkKey(blk, ch))
				if err != nil {
					panic(err)
				}
				reqs = append(reqs, req)
			}
			c.WaitAll(p, reqs)
			for _, r := range reqs {
				if r.Value != blk {
					panic("chunk verification failed")
				}
			}
		}
		read := p.Now() - t0
		fmt.Printf("read  %d blocks back and verified them in %v — %.0f MB/s\n",
			bc.Blocks(), read, float64(bc.TotalBytes)/read.Seconds()/1e6)
	})
	cl.Env.Run()

	for i, srv := range cl.Servers {
		fmt.Printf("server %d stored %d chunks\n", i, srv.Store().Len())
	}
}
