package hybridkv_test

// One testing.B benchmark per table/figure of the paper's evaluation
// (Section VI). Each benchmark executes the full experiment — build the
// simulated cluster(s), preload, run the measurement phase — once per
// iteration and reports the experiment's headline numbers as custom
// metrics. Latencies are *virtual* microseconds (sim-µs/op), throughput is
// virtual ops/second; ns/op only reflects host wall time to run the
// simulation.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig6b -benchtime=1x

import (
	"testing"

	"hybridkv/internal/bench"
)

// runFigure executes the experiment once per b.N and reports the metrics
// whose keys appear in report (metric key → benchmark unit suffix).
func runFigure(b *testing.B, id string, report map[string]string) {
	e := bench.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		r = e.Run(bench.Options{})
	}
	for key, unit := range report {
		v, ok := r.Metrics[key]
		if !ok {
			b.Fatalf("experiment %s did not produce metric %q", id, key)
		}
		b.ReportMetric(v, unit)
	}
}

func BenchmarkFig1a(b *testing.B) {
	runFigure(b, "fig1a", map[string]string{
		"IPoIB-Mem.avg_us":    "ipoib-sim-µs/op",
		"RDMA-Mem.avg_us":     "rdma-sim-µs/op",
		"H-RDMA-Def.avg_us":   "hybrid-sim-µs/op",
		"ratio.ipoib_vs_rdma": "ipoib/rdma-x",
	})
}

func BenchmarkFig1b(b *testing.B) {
	runFigure(b, "fig1b", map[string]string{
		"IPoIB-Mem.avg_us":  "ipoib-sim-µs/op",
		"RDMA-Mem.avg_us":   "rdma-sim-µs/op",
		"H-RDMA-Def.avg_us": "hybrid-sim-µs/op",
	})
}

func BenchmarkFig2a(b *testing.B) {
	runFigure(b, "fig2a", map[string]string{
		"RDMA-Mem.client_wait_us": "cliwait-sim-µs/op",
		"RDMA-Mem.avg_us":         "rdma-sim-µs/op",
	})
}

func BenchmarkFig2b(b *testing.B) {
	runFigure(b, "fig2b", map[string]string{
		"RDMA-Mem.miss_penalty_us": "miss-sim-µs/op",
		"H-RDMA-Def.cache_load_us": "ssdload-sim-µs/op",
		"H-RDMA-Def.slab_alloc_us": "slaballoc-sim-µs/op",
	})
}

func BenchmarkFig4(b *testing.B) {
	runFigure(b, "fig4", map[string]string{
		"direct.32KB_us":   "direct32K-sim-µs",
		"cached.32KB_us":   "cached32K-sim-µs",
		"mmap.2KB_us":      "mmap2K-sim-µs",
		"cached.1024KB_us": "cached1M-sim-µs",
	})
}

func BenchmarkFig6a(b *testing.B) {
	runFigure(b, "fig6a", map[string]string{
		"H-RDMA-Opt-NonB-i.avg_us": "nonb-sim-µs/op",
		"RDMA-Mem.avg_us":          "rdmamem-sim-µs/op",
	})
}

func BenchmarkFig6b(b *testing.B) {
	runFigure(b, "fig6b", map[string]string{
		"improvement.nonb_i_vs_def":      "nonb/def-x",
		"improvement.nonb_i_vs_optblock": "nonb/opt-x",
		"improvement.optblock_vs_def":    "opt/def-x",
		"H-RDMA-Opt-NonB-i.avg_us":       "nonb-sim-µs/op",
	})
}

func BenchmarkFig7a(b *testing.B) {
	runFigure(b, "fig7a", map[string]string{
		"RDMA-NonB-i.read-only.overlap_pct":   "nonbI-ro-%",
		"RDMA-NonB-i.write-heavy.overlap_pct": "nonbI-wh-%",
		"RDMA-NonB-b.write-heavy.overlap_pct": "nonbB-wh-%",
	})
}

func BenchmarkFig7b(b *testing.B) {
	runFigure(b, "fig7b", map[string]string{
		"improvement_pct.nonb_i_vs_def.16KB": "improve16K-%",
		"improvement_pct.nonb_i_vs_def.64KB": "improve64K-%",
	})
}

func BenchmarkFig7c(b *testing.B) {
	runFigure(b, "fig7c", map[string]string{
		"speedup.nonb_i_vs_block":       "nonb/block-x",
		"speedup.optblock_vs_def":       "opt/def-x",
		"H-RDMA-Opt-NonB-i.ops_per_sec": "nonb-sim-ops/s",
		"H-RDMA-Opt-Block.ops_per_sec":  "opt-sim-ops/s",
	})
}

func BenchmarkFig8a(b *testing.B) {
	runFigure(b, "fig8a", map[string]string{
		"improvement_pct.opt_vs_def.SATA.write-heavy":    "optSATA-%",
		"improvement_pct.nonb_i_vs_def.SATA.write-heavy": "nonbSATA-%",
		"improvement_pct.opt_vs_def.NVMe.write-heavy":    "optNVMe-%",
	})
}

func BenchmarkFig8b(b *testing.B) {
	runFigure(b, "fig8b", map[string]string{
		"improvement_pct.access.SATA.2MB":  "accessSATA2M-%",
		"improvement_pct.access.SATA.16MB": "accessSATA16M-%",
		"improvement_pct.access.NVMe.16MB": "accessNVMe16M-%",
	})
}

// Ablation benches: the design-choice sweeps DESIGN.md calls out.

func runAblation(b *testing.B, id string, report map[string]string) {
	e := bench.AblationByID(id)
	if e == nil {
		b.Fatalf("unknown ablation %q", id)
	}
	var r *bench.Result
	for i := 0; i < b.N; i++ {
		r = e.Run(bench.Options{Ops: 1200})
	}
	for key, unit := range report {
		v, ok := r.Metrics[key]
		if !ok {
			b.Fatalf("ablation %s did not produce metric %q", id, key)
		}
		b.ReportMetric(v, unit)
	}
}

func BenchmarkAblationZipf(b *testing.B) {
	runAblation(b, "abl-zipf", map[string]string{
		"s=0.20.nonb_vs_def": "s0.2-x",
		"s=0.99.nonb_vs_def": "s0.99-x",
	})
}

func BenchmarkAblationWorkers(b *testing.B) {
	runAblation(b, "abl-workers", map[string]string{
		"workers=1.per_op_us": "w1-sim-µs/op",
		"workers=4.per_op_us": "w4-sim-µs/op",
	})
}

func BenchmarkAblationBuffer(b *testing.B) {
	runAblation(b, "abl-buffer", map[string]string{
		"2KB.overlap_pct":   "bset2K-%",
		"128KB.overlap_pct": "bset128K-%",
	})
}

func BenchmarkAblationCutoff(b *testing.B) {
	runAblation(b, "abl-cutoff", map[string]string{
		"cutoff=0K.set_us":  "cut0-sim-µs/op",
		"cutoff=16K.set_us": "cut16K-sim-µs/op",
	})
}

func BenchmarkAblationWindow(b *testing.B) {
	runAblation(b, "abl-window", map[string]string{
		"window=1.ops_per_sec":  "win1-sim-ops/s",
		"window=64.ops_per_sec": "win64-sim-ops/s",
	})
}
