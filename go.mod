module hybridkv

go 1.24
