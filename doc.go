// Package hybridkv is a from-scratch Go reproduction of "High-Performance
// Hybrid Key-Value Store on Modern Clusters with RDMA Interconnects and
// SSDs: Non-blocking Extensions, Designs, and Benefits" (Shankar et al.,
// IPDPS 2016).
//
// The system lives under internal/: a deterministic discrete-event kernel
// (internal/sim), an RDMA-verbs + IPoIB fabric (internal/simnet,
// internal/verbs), SSD and page-cache substrates (internal/blockdev,
// internal/pagecache), the hybrid 'RAM+SSD' slab manager and item store
// (internal/slab, internal/hybridslab, internal/store), the server engine
// (internal/server), and — the paper's primary contribution — the
// libmemcached-style client with non-blocking ISet/IGet/BSet/BGet/Wait/Test
// extensions (internal/core). internal/cluster assembles deployments,
// internal/workload generates the OHB-style workloads, and internal/bench
// reproduces every table and figure of the evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package hybridkv
